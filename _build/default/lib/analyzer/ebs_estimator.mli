(** BBEC estimation from EBS samples (paper section III.A).

    Classic EBS attributes each IP sample to a single instruction; the
    paper's enhancement applies every sample to {e all instructions of the
    enclosing basic block} — if one instruction of the block retired, the
    whole block did.  To convert to an execution count the per-block
    sample tally is multiplied by the sampling period and divided by the
    block's instruction length. *)

type t = {
  bbec : Bbec.t;
  raw : int array;  (** Samples landing in each block. *)
  unattributed : int;  (** IPs outside any known block (e.g. skid past a
                           function end into padding, or unmapped). *)
  period : int;
}

val estimate : Static.t -> period:int -> Sample_db.ebs_sample array -> t
