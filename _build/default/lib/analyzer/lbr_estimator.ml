type t = {
  bbec : Bbec.t;
  weight : float array;
  period : int;
  snapshots : int;
  usable_streams : int;
  inconsistent_streams : int;
  discarded_streams : int;
}


let estimate static ~period samples =
  let total = Static.total_blocks static in
  let weight = Array.make total 0.0 in
  let usable = ref 0 and inconsistent = ref 0 and discarded = ref 0 in
  Array.iter
    (fun (s : Sample_db.lbr_sample) ->
      let n = Array.length s.entries in
      if n >= 2 then begin
        (* Two passes: classify the snapshot's streams first, then
           normalise the snapshot to one sample over its usable streams
           (= 1/(N-1) when all N-1 are usable, the paper's weighting). *)
        let walked = ref [] in
        for idx = 1 to n - 1 do
          let target = s.entries.(idx - 1).Hbbp_cpu.Lbr.tgt in
          let src = s.entries.(idx).Hbbp_cpu.Lbr.src in
          match Stream_walk.walk static ~target ~src with
          | Stream_walk.Blocks gids ->
              incr usable;
              walked := gids :: !walked
          | Stream_walk.Inconsistent -> incr inconsistent
          | Stream_walk.Bad -> incr discarded
        done;
        match !walked with
        | [] -> ()
        | streams ->
            let w = 1.0 /. float_of_int (List.length streams) in
            List.iter
              (List.iter (fun gid -> weight.(gid) <- weight.(gid) +. w))
              streams
      end)
    samples;
  let bbec = Bbec.create Bbec.Lbr total in
  Array.iteri
    (fun gid w -> bbec.Bbec.counts.(gid) <- w *. float_of_int period)
    weight;
  {
    bbec;
    weight;
    period;
    snapshots = Array.length samples;
    usable_streams = !usable;
    inconsistent_streams = !inconsistent;
    discarded_streams = !discarded;
  }
