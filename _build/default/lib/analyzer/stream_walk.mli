(** Walking one LBR stream over the static block map.

    A stream [target → source] claims straight-line execution between the
    two addresses: every block laid out in between executed, and none of
    them may end in an always-taken terminator. *)

type result =
  | Blocks of int list  (** Global block ids covered, in layout order. *)
  | Inconsistent
      (** The walk crossed an always-taken terminator — statically
          impossible straight-line flow (e.g. disassembly of a
          NOP-patched kernel, or a corrupt LBR pairing). *)
  | Bad  (** Unresolvable endpoints, backwards range, or over-long. *)

(** Upper bound on blocks per stream. *)
val max_walk : int

val walk : Static.t -> target:int -> src:int -> result
