(** Static view of a whole process: per-image basic-block maps with a
    dense {e global} block numbering, so every estimator can work with
    flat arrays indexed by global block id. *)

open Hbbp_program

type t

(** [create process] disassembles every image.  For kernel images pass
    what the analyzer can see — the {e disk} image (use
    {!Kernel_patch.patch_static} to swap in live text). *)
val create : Process.t -> (t, Disasm.error) result

val create_exn : Process.t -> t
val process : t -> Process.t
val total_blocks : t -> int

(** [find t addr] — global id of the block containing [addr]. *)
val find : t -> int -> int option

(** [find_starting t addr] — global id of the block starting at [addr]. *)
val find_starting : t -> int -> int option

(** [block t gid] — the image, map and block behind a global id. *)
val block : t -> int -> Image.t * Bb_map.t * Basic_block.t

(** [next_in_layout t gid] — the fall-through neighbour (same image). *)
val next_in_layout : t -> int -> int option

val global_id : t -> Bb_map.t -> Basic_block.t -> int option
val iter : (int -> Image.t -> Basic_block.t -> unit) -> t -> unit
val map_of_image : t -> string -> Bb_map.t option
