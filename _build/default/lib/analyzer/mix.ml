open Hbbp_isa
open Hbbp_program

type row = {
  image : string;
  ring : Ring.t;
  symbol : string;
  block_gid : int;
  block_addr : int;
  block_len : int;
  mnemonic : Mnemonic.t;
  count : float;
}

type t = { rows : row list }

let of_bbec static (bbec : Bbec.t) =
  let rows = ref [] in
  Static.iter
    (fun gid (image : Image.t) block ->
      let count = Bbec.count bbec gid in
      if count > 0.0 then begin
        let symbol =
          match Image.symbol_at image block.Basic_block.addr with
          | Some s -> s.Symbol.name
          | None -> "<unknown>"
        in
        (* Group the block's instructions by mnemonic. *)
        let per_mnemonic = Hashtbl.create 8 in
        Array.iter
          (fun (instr : Instruction.t) ->
            Hashtbl.replace per_mnemonic instr.mnemonic
              (1
              + Option.value ~default:0
                  (Hashtbl.find_opt per_mnemonic instr.mnemonic)))
          block.Basic_block.instrs;
        Hashtbl.iter
          (fun mnemonic occurrences ->
            rows :=
              {
                image = image.Image.name;
                ring = image.Image.ring;
                symbol;
                block_gid = gid;
                block_addr = block.Basic_block.addr;
                block_len = Basic_block.length block;
                mnemonic;
                count = count *. float_of_int occurrences;
              }
              :: !rows)
          per_mnemonic
      end)
    static;
  { rows = List.rev !rows }

let filter f t = { rows = List.filter f t.rows }
let user_only t = filter (fun r -> Ring.equal r.ring Ring.User) t
let kernel_only t = filter (fun r -> Ring.equal r.ring Ring.Kernel) t

let totals_by key t =
  let table = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = key r in
      Hashtbl.replace table k
        (r.count +. Option.value ~default:0.0 (Hashtbl.find_opt table k)))
    t.rows;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let mnemonic_totals t = totals_by (fun r -> r.mnemonic) t
let symbol_totals t = totals_by (fun r -> (r.image, r.symbol)) t
let total t = List.fold_left (fun acc r -> acc +. r.count) 0.0 t.rows

let of_histogram h =
  List.map (fun (m, c) -> (m, Int64.to_float c)) h
  |> List.sort (fun (_, a) (_, b) -> compare b a)
