(** The kernel self-modifying-code remedy (paper section III.C): "after
    the run we patch the static kernel binary on disk with the .text
    extracted from the live kernel image". *)

open Hbbp_program

(** [patch_process ~analyzed ~live] — every kernel image in [analyzed]
    whose name also appears in [live] gets its code bytes replaced by the
    live text. *)
val patch_process : analyzed:Process.t -> live:Process.t -> Process.t

(** [patch_static static ~live] — convenience: patch and rebuild the
    static view. *)
val patch_static : Static.t -> live:Process.t -> Static.t
