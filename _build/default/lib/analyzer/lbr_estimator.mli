(** BBEC estimation from LBR stacks (paper section III.B).

    Each snapshot of depth N yields N-1 {e streams}: between
    [Target[i-1]] and [Source[i]] no branch was taken, so every basic
    block laid out between those addresses executed.  Streams are
    weighted so that a whole snapshot counts as one sample — 1/(N-1) when
    all N-1 streams are usable (the paper's weighting), 1/(usable)
    otherwise — and multiplying a block's accumulated weight by the
    sampling period estimates its execution count.

    Streams are validated during the walk: a stream that would cross an
    always-taken terminator (unconditional jump, call, return) is
    {e inconsistent} — execution claims straight-line flow where the
    static code says that is impossible.  This is exactly the symptom
    self-modifying kernel code produces when the analyzer disassembles
    the on-disk image (section III.C); such streams are dropped and
    counted. *)

type t = {
  bbec : Bbec.t;
  weight : float array;
  period : int;
  snapshots : int;
  usable_streams : int;
  inconsistent_streams : int;
      (** Walk crossed an always-taken terminator. *)
  discarded_streams : int;
      (** Unresolvable endpoints, backwards ranges, or over-long walks. *)
}

val estimate : Static.t -> period:int -> Sample_db.lbr_sample array -> t
