(** LBR bias detection (paper section III.C).

    Some branches appear at entry[0] of the LBR stack a disproportionate
    number of times (up to ~50%).  Since [source[0]] has no matching
    [target[-1]], the stream ending there is unusable, and when a branch
    monopolises that slot the blocks around it are systematically
    mis-counted.  When the analyzer observes a branch over-represented at
    entry[0] relative to its share of the deeper entries, it labels the
    branch's basic block with a {b bias flag}: its LBR-based count is
    suspect.  The flag is one of HBBP's classifier features. *)

type branch_stat = {
  src : int;  (** Branch source address. *)
  entry0_count : int;
  deep_count : int;  (** Appearances at entries 1..N-1. *)
  entry0_share : float;
  deep_share : float;
  adjacent_streams : int;  (** Streams starting at this branch's records. *)
  failed_streams : int;  (** Of those, how many could not be walked. *)
}

type t = {
  flags : bool array;  (** Per global block id. *)
  stats : branch_stat list;  (** Branches sorted by entry0 share. *)
  snapshots : int;
}

type params = {
  min_snapshots : int;  (** Below this, never flag (default 30). *)
  min_entry0 : int;  (** Minimum absolute entry[0] sightings (default 8). *)
  min_entry0_share : float;
      (** Only branches hot enough to matter are flagged: their entry[0]
          share must reach this floor (default 0.04). *)
  share_factor : float;
      (** Flag when entry0 share exceeds this multiple of the deep share
          (default 1.25). *)
  min_failures : int;
      (** Second symptom — record loss: minimum failed adjacent streams
          (default 12). *)
  failure_rate : float;
      (** ... and minimum failure rate among them (default 0.10). *)
}

val default_params : params
val detect : ?params:params -> Static.t -> Sample_db.lbr_sample array -> t
val flagged_blocks : t -> int list
