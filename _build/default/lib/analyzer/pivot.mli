(** Pivot tables over instruction mixes (paper section V.B: "the final
    instruction mix data is output as a pivot table ... data can be
    filtered, aggregated or broken down using different granularity
    levels"). *)

type dimension =
  | Image
  | Symbol
  | Block
  | Mnem
  | Isa_set
  | Category
  | Packing
  | Ring_level

val dimension_to_string : dimension -> string

(** [value dim row] — the rendered key of [row] along [dim]. *)
val value : dimension -> Mix.row -> string

type table = {
  headers : string list;  (** One per dimension, plus the value column. *)
  rows : (string list * float) list;  (** Sorted by count, descending. *)
}

(** [pivot ~dims ?filter mix] — group by the dimension tuple. *)
val pivot : dims:dimension list -> ?filter:(Mix.row -> bool) -> Mix.t -> table

(** [top n table] — keep the n largest rows. *)
val top : int -> table -> table

(** Render with aligned columns; counts in engineering units. *)
val render : Format.formatter -> table -> unit

(** CSV rendering (RFC-4180 quoting; full-precision counts) — the paper's
    "facilitates machine processing or report generation". *)
val to_csv : table -> string
