open Hbbp_program

type t = {
  process : Process.t;
  images : Image.t array;
  maps : Bb_map.t array;
  offsets : int array;  (* global id of each map's block 0 *)
  total_blocks : int;
}

let create process =
  let images = Array.of_list (Process.images process) in
  let rec build k acc =
    if k = Array.length images then Ok (List.rev acc)
    else
      match Bb_map.of_image images.(k) with
      | Ok map -> build (k + 1) (map :: acc)
      | Error e -> Error e
  in
  match build 0 [] with
  | Error e -> Error e
  | Ok maps ->
      let maps = Array.of_list maps in
      let offsets = Array.make (Array.length maps) 0 in
      let total = ref 0 in
      Array.iteri
        (fun k map ->
          offsets.(k) <- !total;
          total := !total + Bb_map.block_count map)
        maps;
      Ok { process; images; maps; offsets; total_blocks = !total }

let create_exn process =
  match create process with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" Disasm.pp_error e)

let process t = t.process
let total_blocks t = t.total_blocks

let map_index t addr =
  let rec scan k =
    if k = Array.length t.images then None
    else if Image.contains t.images.(k) addr then Some k
    else scan (k + 1)
  in
  scan 0

let find t addr =
  match map_index t addr with
  | None -> None
  | Some k ->
      Option.map
        (fun (b : Basic_block.t) -> t.offsets.(k) + b.id)
        (Bb_map.block_at t.maps.(k) addr)

let find_starting t addr =
  match map_index t addr with
  | None -> None
  | Some k ->
      Option.map
        (fun (b : Basic_block.t) -> t.offsets.(k) + b.id)
        (Bb_map.block_starting_at t.maps.(k) addr)

let owner t gid =
  let rec scan k =
    if k = Array.length t.maps - 1 then k
    else if gid < t.offsets.(k + 1) then k
    else scan (k + 1)
  in
  if gid < 0 || gid >= t.total_blocks then
    invalid_arg "Static: global id out of range";
  scan 0

let block t gid =
  let k = owner t gid in
  (t.images.(k), t.maps.(k), Bb_map.block t.maps.(k) (gid - t.offsets.(k)))

let next_in_layout t gid =
  let k = owner t gid in
  let map = t.maps.(k) in
  let b = Bb_map.block map (gid - t.offsets.(k)) in
  Option.map
    (fun (nb : Basic_block.t) -> t.offsets.(k) + nb.id)
    (Bb_map.next_block map b)

let global_id t map (b : Basic_block.t) =
  let rec scan k =
    if k = Array.length t.maps then None
    else if t.maps.(k) == map then Some (t.offsets.(k) + b.id)
    else scan (k + 1)
  in
  scan 0

let iter f t =
  Array.iteri
    (fun k map ->
      Array.iter
        (fun (b : Basic_block.t) -> f (t.offsets.(k) + b.id) t.images.(k) b)
        (Bb_map.blocks map))
    t.maps

let map_of_image t name =
  let rec scan k =
    if k = Array.length t.images then None
    else if String.equal t.images.(k).Image.name name then Some t.maps.(k)
    else scan (k + 1)
  in
  scan 0
