type t = { bbec : Bbec.t; raw : int array; unattributed : int; period : int }

let estimate static ~period samples =
  let total = Static.total_blocks static in
  let raw = Array.make total 0 in
  let unattributed = ref 0 in
  Array.iter
    (fun (s : Sample_db.ebs_sample) ->
      match Static.find static s.ip with
      | Some gid -> raw.(gid) <- raw.(gid) + 1
      | None -> incr unattributed)
    samples;
  let bbec = Bbec.create Bbec.Ebs total in
  Static.iter
    (fun gid _ block ->
      let len = Hbbp_program.Basic_block.length block in
      if raw.(gid) > 0 && len > 0 then
        bbec.Bbec.counts.(gid) <-
          float_of_int raw.(gid) *. float_of_int period /. float_of_int len)
    static;
  { bbec; raw; unattributed = !unattributed; period }
