(** Dynamic instruction mixes: BBECs joined with static disassembly
    (paper section V.B).

    A mix is a flat fact table — one row per (block, mnemonic) with a
    dynamic execution count — annotated with every static attribute the
    pivot layer can group by. *)

open Hbbp_isa
open Hbbp_program

type row = {
  image : string;
  ring : Ring.t;
  symbol : string;
  block_gid : int;
  block_addr : int;
  block_len : int;
  mnemonic : Mnemonic.t;
  count : float;
}

type t = { rows : row list }

(** [of_bbec static bbec] — expands each block's count over its
    instructions. *)
val of_bbec : Static.t -> Bbec.t -> t

val filter : (row -> bool) -> t -> t
val user_only : t -> t
val kernel_only : t -> t

(** Per-mnemonic totals, descending. *)
val mnemonic_totals : t -> (Mnemonic.t * float) list

(** Per-symbol totals (instructions executed per function), descending. *)
val symbol_totals : t -> ((string * string) * float) list

(** Total dynamic instructions. *)
val total : t -> float

(** [of_histogram h] — per-mnemonic totals from an exact instrumentation
    histogram (the reference mix). *)
val of_histogram : (Mnemonic.t * int64) list -> (Mnemonic.t * float) list
