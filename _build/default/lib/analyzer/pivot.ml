open Hbbp_isa

type dimension =
  | Image
  | Symbol
  | Block
  | Mnem
  | Isa_set
  | Category
  | Packing
  | Ring_level

let dimension_to_string = function
  | Image -> "module"
  | Symbol -> "symbol"
  | Block -> "block"
  | Mnem -> "mnemonic"
  | Isa_set -> "isa set"
  | Category -> "category"
  | Packing -> "packing"
  | Ring_level -> "ring"

let value dim (r : Mix.row) =
  match dim with
  | Image -> r.image
  | Symbol -> r.symbol
  | Block -> Printf.sprintf "BB@%#x" r.block_addr
  | Mnem -> Mnemonic.to_string r.mnemonic
  | Isa_set -> Mnemonic.isa_set_to_string (Mnemonic.isa_set r.mnemonic)
  | Category -> Mnemonic.category_to_string (Mnemonic.category r.mnemonic)
  | Packing -> (
      match Mnemonic.packing r.mnemonic with
      | Mnemonic.Packed -> "PACKED"
      | Mnemonic.Scalar_fp -> "SCALAR"
      | Mnemonic.Not_vector -> "NONE")
  | Ring_level -> Hbbp_program.Ring.to_string r.ring

type table = { headers : string list; rows : (string list * float) list }

let pivot ~dims ?(filter = fun _ -> true) (mix : Mix.t) =
  let table = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if filter r then begin
        let key = List.map (fun d -> value d r) dims in
        Hashtbl.replace table key
          (r.Mix.count +. Option.value ~default:0.0 (Hashtbl.find_opt table key))
      end)
    mix.Mix.rows;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { headers = List.map dimension_to_string dims @ [ "count" ]; rows }

let top n table = { table with rows = List.filteri (fun k _ -> k < n) table.rows }

let format_count v =
  if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let render ppf { headers; rows } =
  let cells =
    List.map (fun (key, v) -> key @ [ format_count v ]) rows
  in
  let all = headers :: cells in
  let ncols = List.length headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        Format.fprintf ppf "%-*s  " (List.nth widths c) cell)
      row;
    Format.pp_print_newline ppf ()
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row cells

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv { headers; rows } =
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_field cells));
    Buffer.add_char buf '\n'
  in
  line headers;
  List.iter
    (fun (key, count) -> line (key @ [ Printf.sprintf "%.2f" count ]))
    rows;
  Buffer.contents buf
