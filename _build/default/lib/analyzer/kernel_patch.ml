open Hbbp_program

let patch_process ~analyzed ~live =
  List.fold_left
    (fun process (img : Image.t) ->
      if Ring.equal img.ring Ring.Kernel then
        match Process.find_image live img.name with
        | Some live_img ->
            Process.with_image process (Image.patch_code img ~from_image:live_img)
        | None -> process
      else process)
    analyzed (Process.images analyzed)

let patch_static static ~live =
  Static.create_exn (patch_process ~analyzed:(Static.process static) ~live)
