open Hbbp_isa
open Hbbp_program
open Hbbp_cpu

type config = { probe_cost : int; bug_mnemonic : Mnemonic.t option }

let default_config = { probe_cost = 12; bug_mnemonic = None }

(* Per-instruction emulation cost: decode + translate + emulate.  Wider
   and microcoded instructions are disproportionately expensive under
   emulation, which is what makes vector-heavy scientific codes suffer
    the most (Table 1: 68-76x on "all other benchmarks" / Hydro-post vs
   4x on SPEC overall). *)
let emulation_cost (i : Instruction.t) =
  let m = i.mnemonic in
  let base =
    match Mnemonic.isa_set m with
    | Mnemonic.Base -> (
        match Mnemonic.category m with
        | Mnemonic.Branch -> 7
        | Mnemonic.Call | Mnemonic.Ret -> 14
        | Mnemonic.Divide -> 18
        | Mnemonic.Sync -> 20
        | Mnemonic.System -> 60
        | _ -> 4)
    | Mnemonic.X87 -> (
        match Mnemonic.category m with
        | Mnemonic.Transcendental -> 160
        | Mnemonic.Divide | Mnemonic.Sqrt -> 60
        | _ -> 28)
    | Mnemonic.Sse -> (
        match Mnemonic.packing m with
        | Mnemonic.Packed -> 38
        | Mnemonic.Scalar_fp | Mnemonic.Not_vector -> 22)
    | Mnemonic.Avx | Mnemonic.Avx2 -> (
        match Mnemonic.category m with
        | Mnemonic.Fma -> 160
        | _ -> (
            match Mnemonic.packing m with
            | Mnemonic.Packed -> 110
            | Mnemonic.Scalar_fp | Mnemonic.Not_vector -> 30))
  in
  let memory =
    if Instruction.reads_memory i || Instruction.writes_memory i then 6 else 0
  in
  base + memory

type t = {
  config : config;
  leader_index : (int, int) Hashtbl.t;  (* block leader addr -> flat id *)
  maps : Bb_map.t array;
  map_of_block : int array;  (* flat id -> index into maps *)
  local_id : int array;  (* flat id -> block id within its map *)
  counts : int array;  (* flat id -> exact execution count *)
  histogram : int64 array;  (* indexed by mnemonic code *)
  mutable total : int64;
  mutable lost_kernel : int;
  mutable emulation_cycles : int;
  mutable native_cycles : int;
}

let create config maps =
  let maps = Array.of_list maps in
  let leader_index = Hashtbl.create 4096 in
  let flat = ref [] in
  let flat_count = ref 0 in
  Array.iteri
    (fun map_idx map ->
      Array.iter
        (fun (b : Basic_block.t) ->
          Hashtbl.replace leader_index b.addr !flat_count;
          flat := (map_idx, b.id) :: !flat;
          incr flat_count)
        (Bb_map.blocks map))
    maps;
  let pairs = Array.of_list (List.rev !flat) in
  {
    config;
    leader_index;
    maps;
    map_of_block = Array.map fst pairs;
    local_id = Array.map snd pairs;
    counts = Array.make !flat_count 0;
    histogram = Array.make (Mnemonic.max_code + 1) 0L;
    total = 0L;
    lost_kernel = 0;
    emulation_cycles = 0;
    native_cycles = 0;
  }

let observer t : Machine.observer =
 fun r ->
  let node = r.node in
  if Ring.equal node.Exec_graph.ring Ring.Kernel then begin
    (* Invisible to user-mode instrumentation; native time still passes. *)
    t.lost_kernel <- t.lost_kernel + 1;
    t.emulation_cycles <- t.emulation_cycles + node.Exec_graph.issue_cost
  end
  else begin
    let code = Mnemonic.to_code node.Exec_graph.instr.Instruction.mnemonic in
    t.histogram.(code) <- Int64.add t.histogram.(code) 1L;
    t.total <- Int64.add t.total 1L;
    t.emulation_cycles <-
      t.emulation_cycles + emulation_cost node.Exec_graph.instr;
    match Hashtbl.find_opt t.leader_index node.Exec_graph.addr with
    | Some flat ->
        t.counts.(flat) <- t.counts.(flat) + 1;
        t.emulation_cycles <- t.emulation_cycles + t.config.probe_cost
    | None -> ()
  end;
  t.native_cycles <- r.cycles

let block_count t map (block : Basic_block.t) =
  match Hashtbl.find_opt t.leader_index block.addr with
  | Some flat when t.maps.(t.map_of_block.(flat)) == map -> t.counts.(flat)
  | Some _ | None -> 0

let block_counts t =
  let out = ref [] in
  Array.iteri
    (fun flat count ->
      if count > 0 then
        let map = t.maps.(t.map_of_block.(flat)) in
        let block = Bb_map.block map t.local_id.(flat) in
        out := (map, block, count) :: !out)
    t.counts;
  List.rev !out

let histogram t =
  let out = ref [] in
  Array.iteri
    (fun code count ->
      if Int64.compare count 0L > 0 then
        match Mnemonic.of_code code with
        | Some m ->
            let count =
              match t.config.bug_mnemonic with
              | Some bug when Mnemonic.equal bug m -> Int64.div count 2L
              | Some _ | None -> count
            in
            out := (m, count) :: !out
        | None -> ())
    t.histogram;
  List.rev !out

let total_instructions t =
  (* The injected bug drops half the executions of one mnemonic from the
     tool's internal accounting, exactly the kind of defect the paper's
     PMU cross-check caught on x264ref (footnote 2). *)
  match t.config.bug_mnemonic with
  | None -> t.total
  | Some bug ->
      Int64.sub t.total (Int64.div t.histogram.(Mnemonic.to_code bug) 2L)
let lost_kernel_instructions t = t.lost_kernel
let instrumented_cycles t = t.emulation_cycles

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  Array.fill t.histogram 0 (Array.length t.histogram) 0L;
  t.total <- 0L;
  t.lost_kernel <- 0;
  t.emulation_cycles <- 0;
  t.native_cycles <- 0
