(** Software instrumentation, modelled on Intel SDE / PIN.

    As an observer over the simulated execution it counts {e exactly}:
    per-basic-block execution counts and a per-mnemonic histogram.  These
    are the paper's ground truth.  Two realities of the real tool are
    modelled faithfully:

    - it sees {b user-mode code only} (kernel retirements are invisible
      and tallied as lost);
    - it makes the workload massively slower.  The emulation cost model
      charges per-instruction translation costs plus a per-block probe
      cost, yielding the 4–120x slowdowns of Table 1. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_cpu

type config = {
  probe_cost : int;  (** Extra cycles per basic-block entry. *)
  bug_mnemonic : Mnemonic.t option;
      (** When set, the histogram under-counts this mnemonic by half —
          reproducing the paper's footnote 2, where SDE produced wrong
          results on x264ref and was caught by PMU cross-checking. *)
}

val default_config : config

(** [emulation_cost i] — cycles the instrumenting emulator spends per
    executed instance of [i]. *)
val emulation_cost : Instruction.t -> int

type t

(** [create config maps] — [maps] are the static BB maps of the {e user}
    images to instrument. *)
val create : config -> Bb_map.t list -> t

val observer : t -> Machine.observer

(** [block_count t map block] — exact execution count. *)
val block_count : t -> Bb_map.t -> Basic_block.t -> int

(** All (map, block, count) triples with non-zero counts. *)
val block_counts : t -> (Bb_map.t * Basic_block.t * int) list

(** Exact per-mnemonic execution histogram (user mode only). *)
val histogram : t -> (Mnemonic.t * int64) list

(** Total user-mode instructions counted. *)
val total_instructions : t -> int64

(** Kernel-mode retirements the tool could not see. *)
val lost_kernel_instructions : t -> int

(** Modelled cycles of the instrumented run (native work plus emulation
    overhead).  Divide by the clean run's cycles for the slowdown
    factor. *)
val instrumented_cycles : t -> int

val reset : t -> unit
