lib/instrument/sde.ml: Array Basic_block Bb_map Exec_graph Hashtbl Hbbp_cpu Hbbp_isa Hbbp_program Instruction Int64 List Machine Mnemonic Ring
