lib/instrument/sde.mli: Basic_block Bb_map Hbbp_cpu Hbbp_isa Hbbp_program Instruction Machine Mnemonic
