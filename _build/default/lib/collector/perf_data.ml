open Hbbp_program
open Hbbp_cpu

type t = {
  workload_name : string;
  ebs_period : int;
  lbr_period : int;
  analysis_images : Image.t list;
  live_kernel_text : (string * bytes) list;
  records : Record.t list;
}

let of_session ~workload_name ~session ~analysis ~live =
  {
    workload_name;
    ebs_period = Session.ebs_period session;
    lbr_period = Session.lbr_period session;
    analysis_images = Process.images analysis;
    live_kernel_text =
      List.filter_map
        (fun (img : Image.t) ->
          if Ring.equal img.ring Ring.Kernel then
            Some (img.name, Bytes.copy img.code)
          else None)
        (Process.images live);
    records = Session.records session live ~pid:1 ~name:workload_name;
  }

let analysis_process t =
  let images =
    List.map
      (fun (img : Image.t) ->
        match List.assoc_opt img.name t.live_kernel_text with
        | Some live_code when Ring.equal img.ring Ring.Kernel ->
            Image.make ~name:img.name ~base:img.base ~code:live_code
              ~symbols:img.symbols ~ring:img.ring
        | _ -> img)
      t.analysis_images
  in
  Process.create images

(* ------------------------------------------------------------------ *)
(* Binary format                                                       *)

type error = Bad_magic | Bad_version of int | Truncated | Corrupt of string

let pp_error ppf = function
  | Bad_magic -> Format.pp_print_string ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Truncated -> Format.pp_print_string ppf "truncated archive"
  | Corrupt what -> Format.fprintf ppf "corrupt archive: %s" what

let magic = "HBBPDATA"
let version = 1

(* -- writer -- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let w_string buf s =
  w_i64 buf (String.length s);
  Buffer.add_string buf s

let w_bytes buf b =
  w_i64 buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_list buf f items =
  w_i64 buf (List.length items);
  List.iter (f buf) items

let w_ring buf = function Ring.User -> w_u8 buf 0 | Ring.Kernel -> w_u8 buf 1

let w_image buf (img : Image.t) =
  w_string buf img.name;
  w_i64 buf img.base;
  w_ring buf img.ring;
  w_bytes buf img.code;
  w_list buf
    (fun buf (s : Symbol.t) ->
      w_string buf s.name;
      w_i64 buf s.addr;
      w_i64 buf s.size)
    img.symbols

let w_event buf e = w_string buf (Pmu_event.to_string e)

let w_record buf (r : Record.t) =
  match r with
  | Record.Comm { pid; name } ->
      w_u8 buf 0;
      w_i64 buf pid;
      w_string buf name
  | Record.Mmap { addr; len; name; ring } ->
      w_u8 buf 1;
      w_i64 buf addr;
      w_i64 buf len;
      w_string buf name;
      w_ring buf ring
  | Record.Fork { parent; child } ->
      w_u8 buf 2;
      w_i64 buf parent;
      w_i64 buf child
  | Record.Sample s ->
      w_u8 buf 3;
      w_event buf s.Record.event;
      w_i64 buf s.Record.ip;
      w_ring buf s.Record.ring;
      w_i64 buf s.Record.time;
      w_i64 buf (Array.length s.Record.lbr);
      Array.iter
        (fun (e : Lbr.entry) ->
          w_i64 buf e.src;
          w_i64 buf e.tgt)
        s.Record.lbr
  | Record.Lost n ->
      w_u8 buf 4;
      w_i64 buf n

let to_bytes t =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_u8 buf version;
  w_string buf t.workload_name;
  w_i64 buf t.ebs_period;
  w_i64 buf t.lbr_period;
  w_list buf w_image t.analysis_images;
  w_list buf
    (fun buf (name, code) ->
      w_string buf name;
      w_bytes buf code)
    t.live_kernel_text;
  w_list buf w_record t.records;
  Buffer.to_bytes buf

(* -- reader -- *)

exception Parse of error

type cursor = { data : bytes; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then raise (Parse Truncated)

let r_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.data c.pos in
  c.pos <- c.pos + 1;
  v

let r_i64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  if v < 0 then raise (Parse (Corrupt "negative length"));
  v

let r_string c =
  let n = r_i64 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_bytes c =
  let n = r_i64 c in
  need c n;
  let b = Bytes.sub c.data c.pos n in
  c.pos <- c.pos + n;
  b

let r_list c f =
  let n = r_i64 c in
  List.init n (fun _ -> f c)

let r_ring c =
  match r_u8 c with
  | 0 -> Ring.User
  | 1 -> Ring.Kernel
  | v -> raise (Parse (Corrupt (Printf.sprintf "ring tag %d" v)))

let of_bytes data =
  try
    if Bytes.length data < String.length magic then raise (Parse Truncated);
    if
      not
        (String.equal (Bytes.sub_string data 0 (String.length magic)) magic)
    then raise (Parse Bad_magic);
    let c = { data; pos = String.length magic } in
    let v = r_u8 c in
    if v <> version then raise (Parse (Bad_version v));
    let workload_name = r_string c in
    let ebs_period = r_i64 c in
    let lbr_period = r_i64 c in
    let analysis_images =
      r_list c (fun c ->
          let name = r_string c in
          let base = r_i64 c in
          let ring = r_ring c in
          let code = r_bytes c in
          let symbols =
            r_list c (fun c ->
                let name = r_string c in
                let addr = r_i64 c in
                let size = r_i64 c in
                Symbol.make ~name ~addr ~size)
          in
          Image.make ~name ~base ~code ~symbols ~ring)
    in
    let live_kernel_text =
      r_list c (fun c ->
          let name = r_string c in
          let code = r_bytes c in
          (name, code))
    in
    let records =
      r_list c (fun c ->
          match r_u8 c with
          | 0 ->
              let pid = r_i64 c in
              let name = r_string c in
              Record.Comm { pid; name }
          | 1 ->
              let addr = r_i64 c in
              let len = r_i64 c in
              let name = r_string c in
              let ring = r_ring c in
              Record.Mmap { addr; len; name; ring }
          | 2 ->
              let parent = r_i64 c in
              let child = r_i64 c in
              Record.Fork { parent; child }
          | 3 ->
              let event_name = r_string c in
              let event =
                match Pmu_event.of_string event_name with
                | Some e -> e
                | None -> raise (Parse (Corrupt ("event " ^ event_name)))
              in
              let ip = r_i64 c in
              let ring = r_ring c in
              let time = r_i64 c in
              let n = r_i64 c in
              let lbr =
                Array.init n (fun _ ->
                    let src = r_i64 c in
                    let tgt = r_i64 c in
                    { Lbr.src; tgt })
              in
              Record.Sample { Record.event; ip; lbr; ring; time }
          | 4 -> Record.Lost (r_i64 c)
          | tag -> raise (Parse (Corrupt (Printf.sprintf "record tag %d" tag))))
    in
    Ok
      {
        workload_name;
        ebs_period;
        lbr_period;
        analysis_images;
        live_kernel_text;
        records;
      }
  with Parse e -> Error e

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      of_bytes data)
