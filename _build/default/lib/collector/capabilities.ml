type generation = Westmere | Ivy_bridge | Haswell
type event_class = Div_cycles | Math_sse_fp | Math_avx_fp | Int_simd | X87
type support = Supported | Not_available | Removed

let generations = [ Westmere; Ivy_bridge; Haswell ]
let event_classes = [ Div_cycles; Math_sse_fp; Math_avx_fp; Int_simd; X87 ]

(* The trend the paper highlights: support declines with newer families
   (AVX events appear with the ISA extension, everything else erodes). *)
let support gen cls =
  match (gen, cls) with
  | Westmere, Math_avx_fp -> Not_available
  | Westmere, _ -> Supported
  | Ivy_bridge, Int_simd -> Removed
  | Ivy_bridge, _ -> Supported
  | Haswell, Math_avx_fp -> Supported
  | Haswell, Div_cycles -> Supported
  | Haswell, (Math_sse_fp | Int_simd | X87) -> Removed

let generation_to_string = function
  | Westmere -> "Westmere"
  | Ivy_bridge -> "Ivy Bridge"
  | Haswell -> "Haswell"

let year = function Westmere -> 2010 | Ivy_bridge -> 2013 | Haswell -> 2015

let event_class_to_string = function
  | Div_cycles -> "DIV (cycles)"
  | Math_sse_fp -> "Math SSE FP"
  | Math_avx_fp -> "Math AVX FP"
  | Int_simd -> "INT SIMD"
  | X87 -> "X87"

let support_to_string = function
  | Supported -> "yes"
  | Not_available -> "N/A"
  | Removed -> "no"

let event_for = function
  | Div_cycles -> Some Hbbp_cpu.Pmu_event.Arith_divider_cycles
  | Math_sse_fp -> Some Hbbp_cpu.Pmu_event.Fp_comp_ops_sse
  | Math_avx_fp -> Some Hbbp_cpu.Pmu_event.Fp_comp_ops_avx
  | Int_simd -> None (* removed on the evaluated Ivy Bridge PMU *)
  | X87 -> Some Hbbp_cpu.Pmu_event.Fp_comp_ops_x87
