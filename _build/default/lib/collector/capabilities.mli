(** Instruction-specific counting-event support across PMU generations
    (paper Table 2).

    The point of the table: direct instruction-specific events cover only
    a small, shrinking set of instruction classes — which is why a
    BBEC-based method is needed for complete mixes. *)

type generation = Westmere | Ivy_bridge | Haswell

type event_class =
  | Div_cycles
  | Math_sse_fp
  | Math_avx_fp
  | Int_simd
  | X87

type support = Supported | Not_available | Removed

val generations : generation list
val event_classes : event_class list
val support : generation -> event_class -> support
val generation_to_string : generation -> string
val event_class_to_string : event_class -> string
val support_to_string : support -> string

(** Year the generation shipped in servers, as in the table header. *)
val year : generation -> int

(** [event_for c] — the simulator event implementing the class, when the
    evaluated (Ivy Bridge) PMU supports it. *)
val event_for : event_class -> Hbbp_cpu.Pmu_event.t option
