(** Sampling-period policy (paper Table 4).

    Real runs last seconds to hours; periods are chosen per runtime class
    so that the sample {e count} stays in a useful band.  Simulated runs
    retire millions (not trillions) of instructions, so the collector
    also provides density-preserving scaled periods: the expected number
    of samples per run matches what the paper-scale periods produce on
    paper-scale runs, which keeps estimator statistics comparable.
    Overhead, being a rate (PMIs per instruction), is always computed
    from the paper periods. *)

type runtime_class =
  | Seconds
  | Minutes_1_2
  | Minutes_spec  (** "Minutes (SPEC workloads)". *)

type pair = { ebs : int; lbr : int }

(** The paper's Table 4 values (primes around 1e6/1e5, 1e7/1e6, 1e8/1e7). *)
val paper : runtime_class -> pair

(** Density-preserving periods for simulated runs. *)
val simulation : runtime_class -> pair

val classify : expected_instructions:int -> runtime_class
val class_to_string : runtime_class -> string
val all_classes : runtime_class list
