(** perf.data-style record stream.

    The collector's output is a flat list of records: mapping and process
    events up front (needed for address → image resolution), then samples
    in delivery order.  This mirrors what the paper's tool parses out of
    "perf" (section V.A). *)

open Hbbp_program
open Hbbp_cpu

type sample = {
  event : Pmu_event.t;
  ip : int;  (** Eventing IP. *)
  lbr : Lbr.entry array;  (** Oldest first; may be empty. *)
  ring : Ring.t;
  time : int;  (** Cycle timestamp. *)
}

type t =
  | Comm of { pid : int; name : string }
  | Mmap of { addr : int; len : int; name : string; ring : Ring.t }
  | Fork of { parent : int; child : int }
  | Sample of sample
  | Lost of int

val pp : Format.formatter -> t -> unit

(** [samples records] — just the samples, in order. *)
val samples : t list -> sample list

(** [mmaps records] — the mapping records. *)
val mmaps : t list -> (int * int * string * Ring.t) list
