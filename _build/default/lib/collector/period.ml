type runtime_class = Seconds | Minutes_1_2 | Minutes_spec
type pair = { ebs : int; lbr : int }

let paper = function
  | Seconds -> { ebs = 1_000_037; lbr = 100_003 }
  | Minutes_1_2 -> { ebs = 10_000_019; lbr = 1_000_037 }
  | Minutes_spec -> { ebs = 100_000_007; lbr = 10_000_019 }

(* A "seconds" run retires ~1e10 instructions and yields ~1e4 EBS samples;
   a simulated run retires ~5e6.  Scaling the period by ~1e-3..1e-4 keeps
   sample counts (and so estimator noise) in the paper's regime.  Values
   are primes to avoid aliasing with loop trip counts. *)
let simulation = function
  | Seconds -> { ebs = 1009; lbr = 211 }
  | Minutes_1_2 -> { ebs = 1511; lbr = 307 }
  | Minutes_spec -> { ebs = 2003; lbr = 401 }

let classify ~expected_instructions =
  if expected_instructions < 4_000_000 then Seconds
  else if expected_instructions < 12_000_000 then Minutes_1_2
  else Minutes_spec

let class_to_string = function
  | Seconds -> "seconds"
  | Minutes_1_2 -> "~1-2 minutes"
  | Minutes_spec -> "minutes (SPEC workloads)"

let all_classes = [ Seconds; Minutes_1_2; Minutes_spec ]
