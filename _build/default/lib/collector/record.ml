open Hbbp_program
open Hbbp_cpu

type sample = {
  event : Pmu_event.t;
  ip : int;
  lbr : Lbr.entry array;
  ring : Ring.t;
  time : int;
}

type t =
  | Comm of { pid : int; name : string }
  | Mmap of { addr : int; len : int; name : string; ring : Ring.t }
  | Fork of { parent : int; child : int }
  | Sample of sample
  | Lost of int

let pp ppf = function
  | Comm { pid; name } -> Format.fprintf ppf "COMM pid=%d %s" pid name
  | Mmap { addr; len; name; ring } ->
      Format.fprintf ppf "MMAP %#x+%#x %s [%a]" addr len name Ring.pp ring
  | Fork { parent; child } -> Format.fprintf ppf "FORK %d -> %d" parent child
  | Sample s ->
      Format.fprintf ppf "SAMPLE %a ip=%#x lbr=%d [%a] t=%d" Pmu_event.pp
        s.event s.ip (Array.length s.lbr) Ring.pp s.ring s.time
  | Lost n -> Format.fprintf ppf "LOST %d" n

let samples records =
  List.filter_map (function Sample s -> Some s | _ -> None) records

let mmaps records =
  List.filter_map
    (function
      | Mmap { addr; len; name; ring } -> Some (addr, len, name, ring)
      | _ -> None)
    records
