lib/collector/session.ml: Hbbp_cpu Hbbp_program Image List Machine Period Pmu Pmu_event Pmu_model Process Record
