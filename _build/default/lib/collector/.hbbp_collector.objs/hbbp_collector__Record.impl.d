lib/collector/record.ml: Array Format Hbbp_cpu Hbbp_program Lbr List Pmu_event Ring
