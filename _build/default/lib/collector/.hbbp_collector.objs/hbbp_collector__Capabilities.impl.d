lib/collector/capabilities.ml: Hbbp_cpu
