lib/collector/session.mli: Hbbp_cpu Hbbp_program Machine Period Pmu Pmu_model Process Record
