lib/collector/perf_data.mli: Format Hbbp_program Image Process Record Session
