lib/collector/perf_data.ml: Array Buffer Bytes Format Fun Hbbp_cpu Hbbp_program Image Int64 Lbr List Pmu_event Printf Process Record Ring Session String Symbol
