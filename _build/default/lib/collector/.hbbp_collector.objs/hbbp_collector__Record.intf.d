lib/collector/record.mli: Format Hbbp_cpu Hbbp_program Lbr Pmu_event Ring
