lib/collector/capabilities.mli: Hbbp_cpu
