lib/collector/period.mli:
