lib/collector/period.ml:
