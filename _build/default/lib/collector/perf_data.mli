(** On-disk archive of a collection run — the moral equivalent of a
    perf.data file plus the bits a later analysis needs:

    - the mapped images (name, base, ring, symbols and {e on-disk} code —
      what an analyzer could read from the filesystem);
    - the live [.text] of every kernel image, captured at collection time
      (paper section III.C: the self-modifying kernel remedy needs it);
    - the record stream (comm/mmap/samples/lost).

    The format is a simple length-prefixed little-endian binary with a
    magic header; it round-trips exactly. *)

open Hbbp_program

type t = {
  workload_name : string;
  ebs_period : int;
  lbr_period : int;
  analysis_images : Image.t list;  (** What is findable on disk. *)
  live_kernel_text : (string * bytes) list;  (** Image name → live code. *)
  records : Record.t list;
}

(** [of_session ~workload_name ~session ~analysis ~live] assembles the
    archive from a finished collection: [analysis] is the process an
    offline analyzer could reconstruct (disk kernel), [live] the process
    that ran. *)
val of_session :
  workload_name:string ->
  session:Session.t ->
  analysis:Process.t ->
  live:Process.t ->
  t

(** [analysis_process t] — the images as mapped, kernel text patched with
    the captured live text (ready for {!Hbbp_analyzer.Static.create}). *)
val analysis_process : t -> Process.t

type error = Bad_magic | Bad_version of int | Truncated | Corrupt of string

val pp_error : Format.formatter -> error -> unit

val to_bytes : t -> bytes
val of_bytes : bytes -> (t, error) result
val save : t -> path:string -> unit
val load : path:string -> (t, error) result
