type t = {
  feature_names : string array;
  class_names : string array;
  features : float array array;
  labels : int array;
  weights : float array;
}

let create ~feature_names ~class_names ~features ~labels ~weights =
  let n = Array.length features in
  if Array.length labels <> n || Array.length weights <> n then
    invalid_arg "Dataset.create: length mismatch";
  let nf = Array.length feature_names in
  Array.iter
    (fun fv ->
      if Array.length fv <> nf then
        invalid_arg "Dataset.create: ragged feature vector")
    features;
  let nc = Array.length class_names in
  Array.iter
    (fun l ->
      if l < 0 || l >= nc then invalid_arg "Dataset.create: label out of range")
    labels;
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Dataset.create: negative weight")
    weights;
  { feature_names; class_names; features; labels; weights }

let length t = Array.length t.labels
let n_features t = Array.length t.feature_names
let n_classes t = Array.length t.class_names
let total_weight t = Array.fold_left ( +. ) 0.0 t.weights

let class_weights t indices =
  let out = Array.make (n_classes t) 0.0 in
  Array.iter
    (fun i -> out.(t.labels.(i)) <- out.(t.labels.(i)) +. t.weights.(i))
    indices;
  out
