let ascii (d : Dataset.t) tree =
  let buf = Buffer.create 1024 in
  let rec go t prefix =
    match (t : Cart.t) with
    | Cart.Leaf l ->
        Buffer.add_string buf
          (Printf.sprintf "%s|--- class: %s (gini=%.3f, samples=%d)\n" prefix
             d.class_names.(l.class_idx) l.gini l.samples)
    | Cart.Node n ->
        Buffer.add_string buf
          (Printf.sprintf "%s|--- %s <= %.2f (gini=%.3f, samples=%d)\n" prefix
             d.feature_names.(n.feature) n.threshold n.gini n.samples);
        go n.left (prefix ^ "|   ");
        Buffer.add_string buf
          (Printf.sprintf "%s|--- %s >  %.2f\n" prefix
             d.feature_names.(n.feature) n.threshold);
        go n.right (prefix ^ "|   ")
  in
  go tree "";
  Buffer.contents buf

let dot (d : Dataset.t) tree =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph tree {\n  node [shape=box];\n";
  let counter = ref 0 in
  let rec go t =
    let id = !counter in
    incr counter;
    (match (t : Cart.t) with
    | Cart.Leaf l ->
        Buffer.add_string buf
          (Printf.sprintf
             "  n%d [label=\"class = %s\\ngini = %.3f\\nsamples = %d\"];\n" id
             d.class_names.(l.class_idx) l.gini l.samples)
    | Cart.Node n ->
        Buffer.add_string buf
          (Printf.sprintf
             "  n%d [label=\"%s <= %.2f\\ngini = %.3f\\nsamples = %d\"];\n" id
             d.feature_names.(n.feature) n.threshold n.gini n.samples);
        let lid = go n.left in
        let rid = go n.right in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"true\"];\n" id lid);
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"false\"];\n" id rid));
    id
  in
  ignore (go tree);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
