(** CART classification trees (Breiman et al., the paper's reference
    [16]): binary splits on numeric features chosen by weighted Gini
    impurity decrease. *)

type params = {
  max_depth : int;
  min_samples_leaf : int;
  min_impurity_decrease : float;
}

val default_params : params

type leaf = {
  class_idx : int;
  gini : float;
  samples : int;
  weight : float;
  class_weights : float array;
}

type t =
  | Leaf of leaf
  | Node of node

and node = {
  feature : int;
  threshold : float;  (** Go left when [x.(feature) <= threshold]. *)
  gini : float;
  samples : int;
  weight : float;
  importance : float;  (** Weighted impurity decrease of this split. *)
  left : t;
  right : t;
}

(** [gini_impurity class_weights] — 1 - sum of squared class shares.
    0 for a pure node; exposed for testing and rendering. *)
val gini_impurity : float array -> float

val train : ?params:params -> Dataset.t -> t
val predict : t -> float array -> int

(** Class-weight shares at the reached leaf. *)
val predict_proba : t -> float array -> float array

val depth : t -> int
val leaf_count : t -> int

(** Normalised to sum to 1 (all zeros for a stump). *)
val feature_importances : t -> n_features:int -> float array

(** [root_split t] — feature index and threshold of the root split. *)
val root_split : t -> (int * float) option
