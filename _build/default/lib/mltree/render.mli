(** Tree rendering: the white-box interpretability that motivated the
    paper's choice of decision trees (section IV.A), and the Figure 1
    output format. *)

(** Scikit-style ASCII rendering with gini, samples and class at each
    node. *)
val ascii : Dataset.t -> Cart.t -> string

(** Graphviz dot output. *)
val dot : Dataset.t -> Cart.t -> string
