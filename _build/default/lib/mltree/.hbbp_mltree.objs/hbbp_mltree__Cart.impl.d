lib/mltree/cart.ml: Array Dataset Fun
