lib/mltree/render.ml: Array Buffer Cart Dataset Printf
