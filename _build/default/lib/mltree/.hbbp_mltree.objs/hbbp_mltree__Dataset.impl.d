lib/mltree/dataset.ml: Array
