lib/mltree/render.mli: Cart Dataset
