lib/mltree/dataset.mli:
