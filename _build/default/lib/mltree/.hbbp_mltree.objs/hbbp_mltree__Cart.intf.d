lib/mltree/cart.mli: Dataset
