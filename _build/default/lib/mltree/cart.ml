type params = {
  max_depth : int;
  min_samples_leaf : int;
  min_impurity_decrease : float;
}

let default_params =
  { max_depth = 6; min_samples_leaf = 8; min_impurity_decrease = 1e-4 }

type leaf = {
  class_idx : int;
  gini : float;
  samples : int;
  weight : float;
  class_weights : float array;
}

type t = Leaf of leaf | Node of node

and node = {
  feature : int;
  threshold : float;
  gini : float;
  samples : int;
  weight : float;
  importance : float;
  left : t;
  right : t;
}

let gini_impurity class_weights =
  let total = Array.fold_left ( +. ) 0.0 class_weights in
  if total <= 0.0 then 0.0
  else
    1.0
    -. Array.fold_left
         (fun acc w ->
           let p = w /. total in
           acc +. (p *. p))
         0.0 class_weights

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best

type split = {
  s_feature : int;
  s_threshold : float;
  s_decrease : float;  (* weighted impurity decrease, un-normalised *)
  s_left : int array;
  s_right : int array;
}

(* Best split of [indices] on [feature]: sort by feature value, sweep the
   class-weight prefix, evaluate every boundary between distinct values. *)
let best_split_on_feature (d : Dataset.t) params indices feature parent_gini
    parent_weight =
  let sorted = Array.copy indices in
  Array.sort
    (fun a b -> compare d.features.(a).(feature) d.features.(b).(feature))
    sorted;
  let n = Array.length sorted in
  let nc = Dataset.n_classes d in
  let left = Array.make nc 0.0 in
  let right = Dataset.class_weights d sorted in
  let best = ref None in
  for i = 0 to n - 2 do
    let s = sorted.(i) in
    left.(d.labels.(s)) <- left.(d.labels.(s)) +. d.weights.(s);
    right.(d.labels.(s)) <- right.(d.labels.(s)) -. d.weights.(s);
    let v = d.features.(s).(feature)
    and v' = d.features.(sorted.(i + 1)).(feature) in
    if v < v' && i + 1 >= params.min_samples_leaf
       && n - i - 1 >= params.min_samples_leaf
    then begin
      let wl = Array.fold_left ( +. ) 0.0 left in
      let wr = Array.fold_left ( +. ) 0.0 right in
      if wl > 0.0 && wr > 0.0 then begin
        let child_gini =
          ((wl *. gini_impurity left) +. (wr *. gini_impurity right))
          /. (wl +. wr)
        in
        let decrease = parent_weight *. (parent_gini -. child_gini) in
        let better =
          match !best with
          | None -> true
          | Some b -> decrease > b.s_decrease
        in
        if better then
          best :=
            Some
              {
                s_feature = feature;
                s_threshold = (v +. v') /. 2.0;
                s_decrease = decrease;
                s_left = Array.sub sorted 0 (i + 1);
                s_right = Array.sub sorted (i + 1) (n - i - 1);
              }
      end
    end
  done;
  !best

let train ?(params = default_params) (d : Dataset.t) =
  let total_weight = Dataset.total_weight d in
  let rec grow indices depth =
    let cw = Dataset.class_weights d indices in
    let gini = gini_impurity cw in
    let weight = Array.fold_left ( +. ) 0.0 cw in
    let make_leaf () =
      Leaf
        {
          class_idx = argmax cw;
          gini;
          samples = Array.length indices;
          weight;
          class_weights = cw;
        }
    in
    if
      depth >= params.max_depth
      || Array.length indices < 2 * params.min_samples_leaf
      || gini = 0.0
    then make_leaf ()
    else begin
      let best = ref None in
      for feature = 0 to Dataset.n_features d - 1 do
        match best_split_on_feature d params indices feature gini weight with
        | Some s ->
            let better =
              match !best with
              | None -> true
              | Some b -> s.s_decrease > b.s_decrease
            in
            if better then best := Some s
        | None -> ()
      done;
      match !best with
      | Some s
        when s.s_decrease /. total_weight >= params.min_impurity_decrease ->
          Node
            {
              feature = s.s_feature;
              threshold = s.s_threshold;
              gini;
              samples = Array.length indices;
              weight;
              importance = s.s_decrease /. total_weight;
              left = grow s.s_left (depth + 1);
              right = grow s.s_right (depth + 1);
            }
      | Some _ | None -> make_leaf ()
    end
  in
  grow (Array.init (Dataset.length d) Fun.id) 0

let rec predict t x =
  match t with
  | Leaf l -> l.class_idx
  | Node n ->
      if x.(n.feature) <= n.threshold then predict n.left x
      else predict n.right x

let rec predict_proba t x =
  match t with
  | Leaf l ->
      let total = Array.fold_left ( +. ) 0.0 l.class_weights in
      if total <= 0.0 then Array.map (fun _ -> 0.0) l.class_weights
      else Array.map (fun w -> w /. total) l.class_weights
  | Node n ->
      if x.(n.feature) <= n.threshold then predict_proba n.left x
      else predict_proba n.right x

let rec depth = function
  | Leaf _ -> 0
  | Node n -> 1 + max (depth n.left) (depth n.right)

let rec leaf_count = function
  | Leaf _ -> 1
  | Node n -> leaf_count n.left + leaf_count n.right

let feature_importances t ~n_features =
  let raw = Array.make n_features 0.0 in
  let rec collect = function
    | Leaf _ -> ()
    | Node n ->
        raw.(n.feature) <- raw.(n.feature) +. n.importance;
        collect n.left;
        collect n.right
  in
  collect t;
  let total = Array.fold_left ( +. ) 0.0 raw in
  if total <= 0.0 then raw else Array.map (fun v -> v /. total) raw

let root_split = function
  | Leaf _ -> None
  | Node n -> Some (n.feature, n.threshold)
