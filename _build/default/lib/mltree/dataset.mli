(** A weighted, labelled dataset for classification-tree training. *)

type t = {
  feature_names : string array;
  class_names : string array;
  features : float array array;  (** [features.(i)] — sample i's vector. *)
  labels : int array;  (** Class index per sample. *)
  weights : float array;  (** Non-negative sample weights. *)
}

(** @raise Invalid_argument on ragged features, label out of range or
    negative weight. *)
val create :
  feature_names:string array ->
  class_names:string array ->
  features:float array array ->
  labels:int array ->
  weights:float array ->
  t

val length : t -> int
val n_features : t -> int
val n_classes : t -> int
val total_weight : t -> float

(** [class_weights t indices] — summed weight per class over a subset. *)
val class_weights : t -> int array -> float array
