open Hbbp_isa

type t = {
  image : Image.t;
  blocks : Basic_block.t array;  (* sorted by address *)
  starts : int array;  (* blocks.(i).addr, for binary search *)
}

let terminator_of (d : Disasm.decoded) : Basic_block.terminator =
  match Mnemonic.branch_kind d.instr.mnemonic with
  | Mnemonic.Uncond_jump -> (
      match Disasm.branch_target d with
      | Some a -> Term_jump a
      | None -> Term_indirect_jump)
  | Mnemonic.Cond_jump -> (
      match Disasm.branch_target d with
      | Some a -> Term_cond a
      | None -> Term_indirect_jump)
  | Mnemonic.Call_branch ->
      if Mnemonic.equal d.instr.mnemonic SYSCALL then Term_syscall
      else Term_call (Disasm.branch_target d)
  | Mnemonic.Ret_branch ->
      if Mnemonic.equal d.instr.mnemonic SYSRET then Term_sysret else Term_ret
  | Mnemonic.Not_branch ->
      if Mnemonic.equal d.instr.mnemonic HLT then Term_halt
      else Term_fallthrough

let of_decoded (image : Image.t) (decoded : Disasm.decoded array) =
  let n = Array.length decoded in
  let leaders = Hashtbl.create 256 in
  Hashtbl.replace leaders image.base ();
  List.iter
    (fun (s : Symbol.t) -> Hashtbl.replace leaders s.addr ())
    image.symbols;
  Array.iter
    (fun (d : Disasm.decoded) ->
      (match Disasm.branch_target d with
      | Some target when Image.contains image target ->
          Hashtbl.replace leaders target ()
      | Some _ | None -> ());
      if
        Instruction.is_branch d.instr
        || Mnemonic.equal d.instr.mnemonic HLT
      then Hashtbl.replace leaders (d.addr + d.len) ())
    decoded;
  let blocks = ref [] in
  let flush id (items : Disasm.decoded list) =
    match List.rev items with
    | [] -> ()
    | first :: _ as ordered ->
        let last = List.nth ordered (List.length ordered - 1) in
        let instrs =
          Array.of_list
            (List.map (fun (d : Disasm.decoded) -> d.instr) ordered)
        in
        let addrs =
          Array.of_list (List.map (fun (d : Disasm.decoded) -> d.addr) ordered)
        in
        blocks :=
          {
            Basic_block.id;
            addr = first.Disasm.addr;
            instrs;
            addrs;
            size = last.Disasm.addr + last.Disasm.len - first.Disasm.addr;
            term = terminator_of last;
          }
          :: !blocks
  in
  let pending = ref [] in
  let next_id = ref 0 in
  for k = 0 to n - 1 do
    let d = decoded.(k) in
    if Hashtbl.mem leaders d.addr && !pending <> [] then begin
      flush !next_id !pending;
      incr next_id;
      pending := []
    end;
    pending := d :: !pending;
    let ends_block =
      Instruction.is_branch d.instr
      || Mnemonic.equal d.instr.mnemonic HLT
      || k = n - 1
    in
    if ends_block then begin
      flush !next_id !pending;
      incr next_id;
      pending := []
    end
  done;
  let blocks = Array.of_list (List.rev !blocks) in
  let starts = Array.map (fun (b : Basic_block.t) -> b.addr) blocks in
  { image; blocks; starts }

let of_image img =
  match Disasm.image img with
  | Ok decoded -> Ok (of_decoded img decoded)
  | Error e -> Error e

let of_image_exn img =
  match of_image img with
  | Ok t -> t
  | Error e -> failwith (Format.asprintf "%a" Disasm.pp_error e)

let image t = t.image
let blocks t = t.blocks
let block_count t = Array.length t.blocks

(* Index of the last block whose start address is <= addr. *)
let floor_index t addr =
  let lo = ref 0 and hi = ref (Array.length t.starts - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.starts.(mid) <= addr then begin
      res := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !res

let block_at t addr =
  let k = floor_index t addr in
  if k < 0 then None
  else
    let b = t.blocks.(k) in
    if Basic_block.contains b addr then Some b else None

let block_starting_at t addr =
  let k = floor_index t addr in
  if k >= 0 && t.starts.(k) = addr then Some t.blocks.(k) else None

let next_block t (b : Basic_block.t) =
  if b.id + 1 < Array.length t.blocks then Some t.blocks.(b.id + 1) else None

let block t id =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg "Bb_map.block: id out of range";
  t.blocks.(id)

let instruction_count t =
  Array.fold_left (fun acc b -> acc + Basic_block.length b) 0 t.blocks

let pp_stats ppf t =
  let lengths =
    Array.to_list (Array.map Basic_block.length t.blocks)
    |> List.sort compare
  in
  let total = List.fold_left ( + ) 0 lengths in
  let count = List.length lengths in
  let median = if count = 0 then 0 else List.nth lengths (count / 2) in
  Format.fprintf ppf "%s: %d blocks, %d instrs, median block length %d"
    t.image.name count total median
