type edge_kind = Taken | Fallthrough

type t = {
  succs : (int * edge_kind) list array;
  preds : int list array;
  edges : int;
}

let of_bb_map map =
  let n = Bb_map.block_count map in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let edges = ref 0 in
  let add src dst kind =
    succs.(src) <- (dst, kind) :: succs.(src);
    preds.(dst) <- src :: preds.(dst);
    incr edges
  in
  Array.iter
    (fun (b : Basic_block.t) ->
      let target_block addr =
        Option.map
          (fun (t : Basic_block.t) -> t.id)
          (Bb_map.block_starting_at map addr)
      in
      let fallthrough () =
        match Bb_map.next_block map b with
        | Some nb -> add b.id nb.Basic_block.id Fallthrough
        | None -> ()
      in
      match b.term with
      | Basic_block.Term_fallthrough -> fallthrough ()
      | Basic_block.Term_jump a ->
          Option.iter (fun id -> add b.id id Taken) (target_block a)
      | Basic_block.Term_cond a ->
          Option.iter (fun id -> add b.id id Taken) (target_block a);
          fallthrough ()
      | Basic_block.Term_call target ->
          Option.iter
            (fun a -> Option.iter (fun id -> add b.id id Taken) (target_block a))
            target;
          fallthrough ()
      | Basic_block.Term_indirect_jump | Basic_block.Term_ret
      | Basic_block.Term_syscall | Basic_block.Term_sysret
      | Basic_block.Term_halt ->
          ())
    (Bb_map.blocks map);
  { succs; preds; edges = !edges }

let successors g id = g.succs.(id)
let predecessors g id = g.preds.(id)
let edge_count g = g.edges

let reachable_from g entry =
  let n = Array.length g.succs in
  let seen = Array.make n false in
  let rec visit id =
    if id >= 0 && id < n && not seen.(id) then begin
      seen.(id) <- true;
      List.iter (fun (s, _) -> visit s) g.succs.(id)
    end
  in
  visit entry;
  seen

(* Iterative dominator computation (Cooper, Harvey, Kennedy): process in
   reverse postorder until fixpoint, intersecting along the idom chain. *)
let immediate_dominators g ~entry =
  let n = Array.length g.succs in
  let idom = Array.make n (-1) in
  if n = 0 || entry < 0 || entry >= n then idom
  else begin
    (* Reverse postorder from entry. *)
    let order = ref [] in
    let mark = Array.make n false in
    let rec dfs b =
      if not mark.(b) then begin
        mark.(b) <- true;
        List.iter (fun (s, _) -> dfs s) g.succs.(b);
        order := b :: !order
      end
    in
    dfs entry;
    let rpo = Array.of_list !order in
    let rpo_index = Array.make n (-1) in
    Array.iteri (fun k b -> rpo_index.(b) <- k) rpo;
    idom.(entry) <- entry;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_index.(!a) > rpo_index.(!b) do
          a := idom.(!a)
        done;
        while rpo_index.(!b) > rpo_index.(!a) do
          b := idom.(!b)
        done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> entry then begin
            let processed_preds =
              List.filter
                (fun p -> rpo_index.(p) >= 0 && idom.(p) <> -1)
                g.preds.(b)
            in
            match processed_preds with
            | [] -> ()
            | first :: rest ->
                let new_idom = List.fold_left intersect first rest in
                if idom.(b) <> new_idom then begin
                  idom.(b) <- new_idom;
                  changed := true
                end
          end)
        rpo
    done;
    idom
  end

let dominates ~idom a b =
  if a < 0 || b < 0 || b >= Array.length idom || idom.(b) = -1 then false
  else
    let rec up x = x = a || (x <> idom.(x) && idom.(x) <> -1 && up idom.(x)) in
    up b

type loop = { header : int; latches : int list; body : int list }

let natural_loops g ~entry =
  let idom = immediate_dominators g ~entry in
  let by_header = Hashtbl.create 16 in
  Array.iteri
    (fun b succs ->
      List.iter
        (fun (s, _) ->
          (* Back edge: b -> s where s dominates b. *)
          if idom.(b) <> -1 && dominates ~idom s b then begin
            let latches, body =
              Option.value ~default:([], [ s ]) (Hashtbl.find_opt by_header s)
            in
            (* Walk predecessors backwards from the latch until the
               header. *)
            let in_body = Hashtbl.create 16 in
            List.iter (fun x -> Hashtbl.replace in_body x ()) body;
            let rec pull x acc =
              if Hashtbl.mem in_body x || x = s then acc
              else begin
                Hashtbl.replace in_body x ();
                List.fold_left (fun acc p -> pull p acc) (x :: acc) g.preds.(x)
              end
            in
            let extra = pull b [] in
            Hashtbl.replace by_header s (b :: latches, extra @ body)
          end)
        succs)
    g.succs;
  Hashtbl.fold
    (fun header (latches, body) acc ->
      { header; latches = List.sort compare latches;
        body = List.sort_uniq compare body }
      :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)
