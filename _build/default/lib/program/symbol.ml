type t = { name : string; addr : int; size : int }

let make ~name ~addr ~size = { name; addr; size }
let contains t a = a >= t.addr && a < t.addr + t.size
let end_addr t = t.addr + t.size

let pp ppf t =
  Format.fprintf ppf "%s @ %#x (+%d)" t.name t.addr t.size
