open Hbbp_isa

type decoded = { addr : int; instr : Instruction.t; len : int }
type error = { addr : int; cause : Encoding.error }

let pp_error ppf { addr; cause } =
  Format.fprintf ppf "disassembly error at %#x: %a" addr Encoding.pp_error cause

let decode_at (img : Image.t) addr =
  match Encoding.decode img.code (addr - img.base) with
  | Ok (instr, len) -> Ok { addr; instr; len }
  | Error cause -> Error { addr; cause }

let image (img : Image.t) =
  let size = Image.size img in
  let rec sweep offset acc =
    if offset >= size then Ok (Array.of_list (List.rev acc))
    else
      match Encoding.decode img.code offset with
      | Ok (instr, len) ->
          sweep (offset + len) ({ addr = img.base + offset; instr; len } :: acc)
      | Error cause -> Error { addr = img.base + offset; cause }
  in
  sweep 0 []

let branch_target d =
  match Instruction.rel_displacement d.instr with
  | Some disp when Instruction.is_branch d.instr -> Some (d.addr + d.len + disp)
  | Some _ | None -> None
