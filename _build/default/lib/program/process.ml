type t = { images : Image.t list (* sorted by base *) }

let create images =
  let images =
    List.sort (fun (a : Image.t) b -> compare a.base b.base) images
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Image.end_addr a > (b : Image.t).base then
          invalid_arg
            (Printf.sprintf "Process.create: images %s and %s overlap"
               (a : Image.t).name b.name);
        check rest
    | [ _ ] | [] -> ()
  in
  check images;
  { images }

let images t = t.images
let image_at t addr = List.find_opt (fun img -> Image.contains img addr) t.images

let resolve t addr =
  match image_at t addr with
  | None -> None
  | Some img -> Some (img, Image.symbol_at img addr)

let find_image t name =
  List.find_opt (fun (img : Image.t) -> String.equal img.name name) t.images

let find_symbol t name =
  List.fold_left
    (fun acc img ->
      match acc with
      | Some _ -> acc
      | None -> Option.map (fun s -> (img, s)) (Image.find_symbol img name))
    None t.images

let user_images t =
  List.filter (fun (img : Image.t) -> Ring.equal img.ring Ring.User) t.images

let kernel_images t =
  List.filter (fun (img : Image.t) -> Ring.equal img.ring Ring.Kernel) t.images

let with_image t img =
  let replaced = ref false in
  let images =
    List.map
      (fun (existing : Image.t) ->
        if String.equal existing.name (img : Image.t).name then begin
          replaced := true;
          img
        end
        else existing)
      t.images
  in
  if not !replaced then invalid_arg "Process.with_image: no such image";
  create images
