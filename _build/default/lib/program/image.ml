type t = {
  name : string;
  base : int;
  code : bytes;
  symbols : Symbol.t list;
  ring : Ring.t;
}

let make ~name ~base ~code ~symbols ~ring =
  let symbols =
    List.sort (fun (a : Symbol.t) b -> compare a.addr b.addr) symbols
  in
  { name; base; code; symbols; ring }

let size t = Bytes.length t.code
let end_addr t = t.base + size t
let contains t a = a >= t.base && a < end_addr t

let symbol_at t addr = List.find_opt (fun s -> Symbol.contains s addr) t.symbols
let find_symbol t name =
  List.find_opt (fun (s : Symbol.t) -> String.equal s.name name) t.symbols

let patch_code t ~from_image =
  if t.base <> from_image.base || size t <> size from_image then
    invalid_arg "Image.patch_code: image layout mismatch";
  { t with code = Bytes.copy from_image.code }
