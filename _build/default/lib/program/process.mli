(** A process address space: the set of images mapped for one run (user
    program, kernel, kernel modules).  This is what the loader hands to
    the machine and what perf-style mmap records describe. *)

type t

(** [create images] — images must not overlap.
    @raise Invalid_argument on overlap. *)
val create : Image.t list -> t

val images : t -> Image.t list
val image_at : t -> int -> Image.t option

(** [resolve p addr] — enclosing image and symbol, if mapped. *)
val resolve : t -> int -> (Image.t * Symbol.t option) option

val find_image : t -> string -> Image.t option

(** [find_symbol p name] searches all images. *)
val find_symbol : t -> string -> (Image.t * Symbol.t) option

val user_images : t -> Image.t list
val kernel_images : t -> Image.t list

(** [with_image p img] replaces the image with the same name. *)
val with_image : t -> Image.t -> t
