(** A static basic block: a maximal single-entry, single-exit straight-line
    instruction sequence.  Calls terminate blocks (they are taken branches
    from the LBR's point of view). *)

open Hbbp_isa

type terminator =
  | Term_fallthrough  (** Next address is a leader (e.g. a branch target). *)
  | Term_jump of int  (** Unconditional direct jump to the given address. *)
  | Term_cond of int  (** Conditional jump; taken target given. *)
  | Term_indirect_jump
  | Term_call of int option  (** [None] for indirect calls. *)
  | Term_ret
  | Term_syscall
  | Term_sysret
  | Term_halt

type t = {
  id : int;  (** Dense index within the enclosing {!Bb_map.t}. *)
  addr : int;  (** Address of the first instruction. *)
  instrs : Instruction.t array;
  addrs : int array;  (** Address of each instruction. *)
  size : int;  (** Total size in bytes. *)
  term : terminator;
}

(** Number of instructions — the paper's "instruction length of a basic
    block", the dominant HBBP feature. *)
val length : t -> int

val end_addr : t -> int
val last_addr : t -> int
val contains : t -> int -> bool

(** [instr_index b addr] is the index within [b] of the instruction at
    exactly [addr]. *)
val instr_index : t -> int -> int option

(** [has_long_latency b] — does the block contain an instruction that
    casts a sampling shadow? *)
val has_long_latency : t -> bool

val pp : Format.formatter -> t -> unit
val pp_terminator : Format.formatter -> terminator -> unit
