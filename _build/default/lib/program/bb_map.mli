(** The static basic-block map of an image: the structure onto which all
    dynamic sample information is projected (paper section V.B, "dynamic
    (sample) information is mapped onto static basic block maps"). *)

type t

(** [of_image img] disassembles [img] and partitions it into basic
    blocks.  Leaders are: the image base, every symbol entry, every direct
    branch target within the image, and every instruction following a
    control-flow instruction. *)
val of_image : Image.t -> (t, Disasm.error) result

(** [of_image_exn img] — raises [Failure] with a rendered error. *)
val of_image_exn : Image.t -> t

val image : t -> Image.t
val blocks : t -> Basic_block.t array
val block_count : t -> int

(** [block_at m addr] is the block containing [addr]. *)
val block_at : t -> int -> Basic_block.t option

(** [block_starting_at m addr] is the block whose first instruction is at
    exactly [addr]. *)
val block_starting_at : t -> int -> Basic_block.t option

(** [next_block m b] is the block laid out immediately after [b]
    (the fall-through successor in address order). *)
val next_block : t -> Basic_block.t -> Basic_block.t option

val block : t -> int -> Basic_block.t
(** [block m id] — by dense id.  Raises [Invalid_argument] if out of
    range. *)

(** Total number of statically distinct instructions. *)
val instruction_count : t -> int

val pp_stats : Format.formatter -> t -> unit
