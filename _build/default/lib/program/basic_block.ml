open Hbbp_isa

type terminator =
  | Term_fallthrough
  | Term_jump of int
  | Term_cond of int
  | Term_indirect_jump
  | Term_call of int option
  | Term_ret
  | Term_syscall
  | Term_sysret
  | Term_halt

type t = {
  id : int;
  addr : int;
  instrs : Instruction.t array;
  addrs : int array;
  size : int;
  term : terminator;
}

let length t = Array.length t.instrs
let end_addr t = t.addr + t.size
let last_addr t = t.addrs.(Array.length t.addrs - 1)
let contains t a = a >= t.addr && a < end_addr t

let instr_index t addr =
  (* [addrs] is sorted: binary search for the exact address. *)
  let lo = ref 0 and hi = ref (Array.length t.addrs - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let a = t.addrs.(mid) in
    if a = addr then begin
      found := Some mid;
      lo := !hi + 1
    end
    else if a < addr then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let has_long_latency t =
  Array.exists (fun (i : Instruction.t) -> Latency.is_long_latency i.mnemonic)
    t.instrs

let pp_terminator ppf = function
  | Term_fallthrough -> Format.pp_print_string ppf "fallthrough"
  | Term_jump a -> Format.fprintf ppf "jmp %#x" a
  | Term_cond a -> Format.fprintf ppf "jcc %#x" a
  | Term_indirect_jump -> Format.pp_print_string ppf "jmp*"
  | Term_call (Some a) -> Format.fprintf ppf "call %#x" a
  | Term_call None -> Format.pp_print_string ppf "call*"
  | Term_ret -> Format.pp_print_string ppf "ret"
  | Term_syscall -> Format.pp_print_string ppf "syscall"
  | Term_sysret -> Format.pp_print_string ppf "sysret"
  | Term_halt -> Format.pp_print_string ppf "hlt"

let pp ppf t =
  Format.fprintf ppf "BB%d @ %#x, %d instrs, %d bytes, %a" t.id t.addr
    (length t) t.size pp_terminator t.term
