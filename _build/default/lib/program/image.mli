(** A loadable code image — the moral equivalent of an ELF text section
    plus its symbol table.

    Kernel images exist in two versions: the on-disk image and the live
    image, which differ at self-patched tracepoints (paper section III.C);
    both are plain values of this type. *)

type t = {
  name : string;  (** e.g. ["fitter-sse"] or ["vmlinux"] or ["hello.ko"]. *)
  base : int;  (** Load address of the first byte of [code]. *)
  code : bytes;
  symbols : Symbol.t list;  (** Sorted by address, non-overlapping. *)
  ring : Ring.t;
}

val make :
  name:string -> base:int -> code:bytes -> symbols:Symbol.t list ->
  ring:Ring.t -> t

val size : t -> int
val end_addr : t -> int
val contains : t -> int -> bool

(** [symbol_at img addr] is the symbol covering [addr], if any. *)
val symbol_at : t -> int -> Symbol.t option

val find_symbol : t -> string -> Symbol.t option

(** [patch_code img ~from_image] returns [img] with its code bytes replaced
    by [from_image]'s — the "patch the static kernel binary on disk with
    the .text extracted from the live kernel image" remedy.  Raises
    [Invalid_argument] if sizes or bases differ. *)
val patch_code : t -> from_image:t -> t
