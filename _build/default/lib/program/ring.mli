(** Privilege level of code.

    Software instrumentation can only observe [User] code; the PMU observes
    both — reproducing this asymmetry is one of the paper's selling points
    (section VIII.D). *)

type t = User | Kernel

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
