(** A tiny assembler: the DSL in which all workloads are written.

    Programs are lists of functions; each function body is a list of
    labels and instructions.  Branch targets are symbolic ([L "loop"]) and
    resolved at assembly time to PC-relative displacements; [A "f"] yields
    the absolute address of a label as a 64-bit immediate, enabling
    indirect calls (function pointers, virtual dispatch). *)

open Hbbp_isa

type operand =
  | R of Operand.reg
  | M of { base : Operand.gpr; index : Operand.gpr option; scale : int; disp : int }
  | I of int64
  | L of string  (** Label reference: becomes a [Rel] displacement. *)
  | A of string  (** Absolute address of a label: becomes an [Imm]. *)

type item =
  | Label of string
  | Ins of Mnemonic.t * operand list

type func = { name : string; body : item list }

exception Asm_error of string

(** {1 Operand shorthands} *)

val rax : operand
val rbx : operand
val rcx : operand
val rdx : operand
val rsi : operand
val rdi : operand
val rbp : operand
val rsp : operand
val r8 : operand
val r9 : operand
val r10 : operand
val r11 : operand
val r12 : operand
val r13 : operand
val r14 : operand
val r15 : operand
val xmm : int -> operand
val ymm : int -> operand
val st : int -> operand
val imm : int -> operand
val mem : ?index:Operand.gpr -> ?scale:int -> ?disp:int -> Operand.gpr -> operand

(** {1 Items} *)

val label : string -> item
val i : Mnemonic.t -> operand list -> item
val func : string -> item list -> func

(** {1 Assembly} *)

(** [assemble ~name ~base ~ring funcs] lays the functions out contiguously
    from [base], resolves labels, encodes everything and returns the image
    together with one symbol per function.

    @raise Asm_error on duplicate or unresolved labels. *)
val assemble : name:string -> base:int -> ring:Ring.t -> func list -> Image.t

(** [entry_of img funcs] is the address of the first function. *)
val label_addresses :
  name:string -> base:int -> ring:Ring.t -> func list -> (string * int) list
