type t = User | Kernel

let equal a b = match (a, b) with
  | User, User | Kernel, Kernel -> true
  | User, Kernel | Kernel, User -> false

let to_string = function User -> "user" | Kernel -> "kernel"
let pp ppf r = Format.pp_print_string ppf (to_string r)
