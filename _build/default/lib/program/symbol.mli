(** A named code range (function) within an image. *)

type t = { name : string; addr : int; size : int }

val make : name:string -> addr:int -> size:int -> t
val contains : t -> int -> bool
val end_addr : t -> int
val pp : Format.formatter -> t -> unit
