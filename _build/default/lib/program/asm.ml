open Hbbp_isa

type operand =
  | R of Operand.reg
  | M of { base : Operand.gpr; index : Operand.gpr option; scale : int; disp : int }
  | I of int64
  | L of string
  | A of string

type item = Label of string | Ins of Mnemonic.t * operand list
type func = { name : string; body : item list }

exception Asm_error of string

let asm_error fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

let gpr g = R (Operand.Gpr g)
let rax = gpr Operand.RAX
let rbx = gpr Operand.RBX
let rcx = gpr Operand.RCX
let rdx = gpr Operand.RDX
let rsi = gpr Operand.RSI
let rdi = gpr Operand.RDI
let rbp = gpr Operand.RBP
let rsp = gpr Operand.RSP
let r8 = gpr Operand.R8
let r9 = gpr Operand.R9
let r10 = gpr Operand.R10
let r11 = gpr Operand.R11
let r12 = gpr Operand.R12
let r13 = gpr Operand.R13
let r14 = gpr Operand.R14
let r15 = gpr Operand.R15
let xmm n = R (Operand.Xmm n)
let ymm n = R (Operand.Ymm n)
let st n = R (Operand.St n)
let imm n = I (Int64.of_int n)
let mem ?index ?(scale = 1) ?(disp = 0) base = M { base; index; scale; disp }
let label s = Label s
let i m ops = Ins (m, ops)
let func name body = { name; body }

(* Size of the eventual encoding; symbolic operands have fixed sizes
   (L -> Rel: 5 bytes, A -> Imm: 9 bytes), so layout is single-pass. *)
let placeholder_operand = function
  | R r -> Operand.Reg r
  | M { base; index; scale; disp } -> Operand.Mem { base; index; scale; disp }
  | I v -> Operand.Imm v
  | L _ -> Operand.Rel 0
  | A _ -> Operand.Imm 0L

let item_length = function
  | Label _ -> 0
  | Ins (m, ops) ->
      Encoding.encoded_length
        (Instruction.make m (List.map placeholder_operand ops))

let layout ~base funcs =
  let labels = Hashtbl.create 64 in
  let add_label name addr =
    if Hashtbl.mem labels name then asm_error "duplicate label %S" name;
    Hashtbl.add labels name addr
  in
  let cursor = ref base in
  let func_spans =
    List.map
      (fun f ->
        let start = !cursor in
        add_label f.name start;
        List.iter
          (fun item ->
            (match item with
            | Label l -> add_label l !cursor
            | Ins _ -> ());
            cursor := !cursor + item_length item)
          f.body;
        (f, start, !cursor - start))
      funcs
  in
  (labels, func_spans, !cursor - base)

let resolve_operand labels ~next_addr = function
  | R r -> Operand.Reg r
  | M { base; index; scale; disp } -> Operand.Mem { base; index; scale; disp }
  | I v -> Operand.Imm v
  | L name -> (
      match Hashtbl.find_opt labels name with
      | Some target -> Operand.Rel (target - next_addr)
      | None -> asm_error "unresolved label %S" name)
  | A name -> (
      match Hashtbl.find_opt labels name with
      | Some target -> Operand.Imm (Int64.of_int target)
      | None -> asm_error "unresolved label %S" name)

let assemble ~name ~base ~ring funcs =
  let labels, func_spans, total = layout ~base funcs in
  let code = Bytes.create total in
  let cursor = ref base in
  List.iter
    (fun (f, _, _) ->
      List.iter
        (fun item ->
          match item with
          | Label _ -> ()
          | Ins (m, ops) ->
              let len = item_length item in
              let next_addr = !cursor + len in
              let ops = List.map (resolve_operand labels ~next_addr) ops in
              let instr = Instruction.make m ops in
              let written = Encoding.encode code (!cursor - base) instr in
              if written <> len then
                asm_error "layout mismatch at %#x in %s" !cursor f.name;
              cursor := next_addr)
        f.body)
    func_spans;
  let symbols =
    List.map
      (fun (f, addr, size) -> Symbol.make ~name:f.name ~addr ~size)
      func_spans
  in
  Image.make ~name ~base ~code ~symbols ~ring

let label_addresses ~name ~base ~ring funcs =
  ignore name;
  ignore ring;
  let labels, _, _ = layout ~base funcs in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels []
  |> List.sort (fun (_, a) (_, b) -> compare a b)
