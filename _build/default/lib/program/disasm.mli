(** Linear disassembly of a code image. *)

open Hbbp_isa

type decoded = { addr : int; instr : Instruction.t; len : int }

type error = { addr : int; cause : Encoding.error }

val pp_error : Format.formatter -> error -> unit

(** [image img] decodes every instruction of [img], in address order.
    The synthetic encoding is self-synchronising from the image base, so
    linear sweep is exact. *)
val image : Image.t -> (decoded array, error) result

(** [decode_at img addr] decodes the single instruction at [addr]. *)
val decode_at : Image.t -> int -> (decoded, error) result

(** [branch_target d] is the resolved absolute target of a direct branch. *)
val branch_target : decoded -> int option
