lib/program/image.ml: Bytes List Ring String Symbol
