lib/program/image.mli: Ring Symbol
