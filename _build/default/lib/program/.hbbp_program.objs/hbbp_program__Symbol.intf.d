lib/program/symbol.mli: Format
