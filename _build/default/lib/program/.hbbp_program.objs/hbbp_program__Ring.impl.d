lib/program/ring.ml: Format
