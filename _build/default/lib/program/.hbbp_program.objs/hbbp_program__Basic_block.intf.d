lib/program/basic_block.mli: Format Hbbp_isa Instruction
