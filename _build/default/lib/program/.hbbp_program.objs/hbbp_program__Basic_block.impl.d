lib/program/basic_block.ml: Array Format Hbbp_isa Instruction Latency
