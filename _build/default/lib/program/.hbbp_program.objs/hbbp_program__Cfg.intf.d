lib/program/cfg.mli: Bb_map
