lib/program/symbol.ml: Format
