lib/program/disasm.ml: Array Encoding Format Hbbp_isa Image Instruction List
