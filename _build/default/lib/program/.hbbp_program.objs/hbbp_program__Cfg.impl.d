lib/program/cfg.ml: Array Basic_block Bb_map Hashtbl List Option
