lib/program/process.ml: Image List Option Printf Ring String
