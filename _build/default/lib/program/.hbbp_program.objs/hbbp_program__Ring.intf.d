lib/program/ring.mli: Format
