lib/program/bb_map.ml: Array Basic_block Disasm Format Hashtbl Hbbp_isa Image Instruction List Mnemonic Symbol
