lib/program/bb_map.mli: Basic_block Disasm Format Image
