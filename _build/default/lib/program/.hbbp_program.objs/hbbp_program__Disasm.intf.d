lib/program/disasm.mli: Encoding Format Hbbp_isa Image Instruction
