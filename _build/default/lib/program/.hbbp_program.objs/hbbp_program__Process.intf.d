lib/program/process.mli: Image Symbol
