lib/program/asm.mli: Hbbp_isa Image Mnemonic Operand Ring
