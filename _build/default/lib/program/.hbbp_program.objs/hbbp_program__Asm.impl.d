lib/program/asm.ml: Bytes Encoding Format Hashtbl Hbbp_isa Image Instruction Int64 List Mnemonic Operand Symbol
