(** Static control-flow graph over a basic-block map. *)

type edge_kind =
  | Taken  (** Branch-taken edge (jump target, call target). *)
  | Fallthrough  (** Not-taken / straight-line edge. *)

type t

val of_bb_map : Bb_map.t -> t

(** [successors g id] — (block id, edge kind) pairs. Return/indirect edges
    are not represented statically. *)
val successors : t -> int -> (int * edge_kind) list

val predecessors : t -> int -> int list
val edge_count : t -> int

(** Block ids reachable from [entry] following static edges. *)
val reachable_from : t -> int -> bool array

(** [immediate_dominators g ~entry] — [idom.(b)] is the immediate
    dominator of [b] ([entry] dominates itself; unreachable blocks get
    [-1]).  Cooper-Harvey-Kennedy iterative algorithm. *)
val immediate_dominators : t -> entry:int -> int array

(** [dominates g ~idom a b] — does [a] dominate [b]?  [idom] from
    {!immediate_dominators}. *)
val dominates : idom:int array -> int -> int -> bool

(** A natural loop: a back edge [latch -> header] where [header]
    dominates [latch], plus every block that can reach the latch without
    passing through the header. *)
type loop = {
  header : int;
  latches : int list;  (** Sources of the back edges. *)
  body : int list;  (** Includes header and latches; sorted. *)
}

(** [natural_loops g ~entry] — loops with identical headers merged,
    sorted by header id. *)
val natural_loops : t -> entry:int -> loop list
