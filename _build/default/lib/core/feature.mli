(** Per-basic-block feature vectors for the HBBP classifier
    (paper section IV.B: "code parameters that could have an influence on
    the underlying performance monitoring subsystem, including basic
    block lengths, instruction-related information, execution counts and
    bias flags"). *)

(** Feature names, in vector order.  Index 0 is the block's instruction
    length — the paper's dominant feature. *)
val names : string array

val index_block_length : int
val index_bias : int

val index_disparity : int
(** Relative disagreement between the EBS and LBR estimates for the
    block, |ebs - lbr| / max(ebs, lbr) — large disagreement on a
    bias-flagged block is the signature of genuine LBR distortion. *)

val of_block :
  Hbbp_analyzer.Static.t ->
  bias:Hbbp_analyzer.Bias.t ->
  ebs:Hbbp_analyzer.Ebs_estimator.t ->
  lbr:Hbbp_analyzer.Lbr_estimator.t ->
  gid:int ->
  float array
