open Hbbp_isa

type per_mnemonic = {
  mnemonic : Mnemonic.t;
  reference : float;
  measured : float;
  error : float;
}

type report = {
  per_mnemonic : per_mnemonic list;
  avg_weighted_error : float;
  total_reference : float;
  spurious : (Mnemonic.t * float) list;
}

let compare_mixes ~reference ~measured =
  let measured_table = Hashtbl.create 128 in
  List.iter
    (fun (m, c) ->
      Hashtbl.replace measured_table m
        (c +. Option.value ~default:0.0 (Hashtbl.find_opt measured_table m)))
    measured;
  let total_reference = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 reference in
  let seen = Hashtbl.create 128 in
  let per_mnemonic =
    reference
    |> List.filter (fun (_, c) -> c > 0.0)
    |> List.map (fun (mnemonic, reference) ->
           Hashtbl.replace seen mnemonic ();
           let measured =
             Option.value ~default:0.0 (Hashtbl.find_opt measured_table mnemonic)
           in
           let error = Float.abs (reference -. measured) /. reference in
           { mnemonic; reference; measured; error })
    |> List.sort (fun a b -> compare b.reference a.reference)
  in
  let avg_weighted_error =
    if total_reference <= 0.0 then 0.0
    else
      List.fold_left
        (fun acc e -> acc +. (e.error *. e.reference /. total_reference))
        0.0 per_mnemonic
  in
  let spurious =
    Hashtbl.fold
      (fun m c acc ->
        if (not (Hashtbl.mem seen m)) && c > 0.0 then (m, c) :: acc else acc)
      measured_table []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { per_mnemonic; avg_weighted_error; total_reference; spurious }

let error_for report m =
  List.find_opt (fun e -> Mnemonic.equal e.mnemonic m) report.per_mnemonic
  |> Option.map (fun e -> e.error)

let block_errors ~reference ~measured =
  Array.mapi
    (fun gid r ->
      if r <= 0.0 then 0.0 else Float.abs (r -. measured.(gid)) /. r)
    reference
