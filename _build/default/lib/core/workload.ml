open Hbbp_program

type t = {
  name : string;
  description : string;
  live_process : Process.t;
  analysis_process : Process.t;
  entry : int;
  runtime_class : Hbbp_collector.Period.runtime_class;
}

let of_user_image ?(description = "")
    ?(runtime_class = Hbbp_collector.Period.Seconds) img ~entry_symbol =
  match Image.find_symbol img entry_symbol with
  | None ->
      invalid_arg
        (Printf.sprintf "Workload.of_user_image: no symbol %S in %s"
           entry_symbol img.Image.name)
  | Some sym ->
      let process = Process.create [ img ] in
      {
        name = img.Image.name;
        description;
        live_process = process;
        analysis_process = process;
        entry = sym.Symbol.addr;
        runtime_class;
      }

let with_kernel t ~disk ~live ~modules =
  let user = Process.images t.live_process in
  {
    t with
    live_process = Process.create (user @ (live :: modules));
    analysis_process = Process.create (user @ (disk :: modules));
  }
