(** Error metrics (paper section VI).

    Per mnemonic M: [Error(M) = |Vref(M) - Vmeasured(M)| / Vref(M)].
    Aggregate: the {e average weighted error} — each mnemonic's error
    weighted by its share of the reference instruction stream. *)

open Hbbp_isa

type per_mnemonic = {
  mnemonic : Mnemonic.t;
  reference : float;
  measured : float;
  error : float;  (** Fraction, e.g. 0.021 for 2.1%. *)
}

type report = {
  per_mnemonic : per_mnemonic list;  (** Sorted by reference count, desc. *)
  avg_weighted_error : float;
  total_reference : float;
  spurious : (Mnemonic.t * float) list;
      (** Measured but absent from the reference. *)
}

(** [compare_mixes ~reference ~measured] — both are per-mnemonic totals. *)
val compare_mixes :
  reference:(Mnemonic.t * float) list ->
  measured:(Mnemonic.t * float) list ->
  report

(** [error_for report m] — Error(M), or None if M not in the reference. *)
val error_for : report -> Mnemonic.t -> float option

(** BBEC-level comparison: per-block relative error against a reference
    count array (used for labelling training data and for Table 3). *)
val block_errors : reference:float array -> measured:float array -> float array
