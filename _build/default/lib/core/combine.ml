open Hbbp_analyzer

let decisions static ~criteria ~bias ~ebs ~lbr =
  Array.init (Static.total_blocks static) (fun gid ->
      Criteria.decide criteria (Feature.of_block static ~bias ~ebs ~lbr ~gid))

let fuse static ~criteria ~bias ~ebs ~lbr =
  let out = Bbec.create Bbec.Hbbp (Static.total_blocks static) in
  let ds = decisions static ~criteria ~bias ~ebs ~lbr in
  Array.iteri
    (fun gid d ->
      out.Bbec.counts.(gid) <-
        (match d with
        | Criteria.Use_ebs -> Bbec.count ebs.Ebs_estimator.bbec gid
        | Criteria.Use_lbr -> Bbec.count lbr.Lbr_estimator.bbec gid))
    ds;
  out
