open Hbbp_isa
open Hbbp_program
open Hbbp_analyzer

let names =
  [|
    "block_length";
    "bias";
    "has_long_latency";
    "mem_ops";
    "log_exec_estimate";
    "ends_in_cond";
    "ebs_lbr_disparity";
  |]

let index_block_length = 0
let index_bias = 1
let index_disparity = 6

let of_block static ~(bias : Bias.t) ~(ebs : Ebs_estimator.t)
    ~(lbr : Lbr_estimator.t) ~gid =
  let _, _, block = Static.block static gid in
  let mem_ops =
    Array.fold_left
      (fun acc instr ->
        if Instruction.reads_memory instr || Instruction.writes_memory instr
        then acc + 1
        else acc)
      0 block.Basic_block.instrs
  in
  let exec_est = Bbec.count ebs.Ebs_estimator.bbec gid in
  let lbr_est = Bbec.count lbr.Lbr_estimator.bbec gid in
  let disparity =
    let top = Float.max exec_est lbr_est in
    if top <= 0.0 then 0.0 else Float.abs (exec_est -. lbr_est) /. top
  in
  let ends_in_cond =
    match block.Basic_block.term with
    | Basic_block.Term_cond _ -> 1.0
    | _ -> 0.0
  in
  [|
    float_of_int (Basic_block.length block);
    (if bias.Bias.flags.(gid) then 1.0 else 0.0);
    (if Basic_block.has_long_latency block then 1.0 else 0.0);
    float_of_int mem_ops;
    log10 (1.0 +. exec_est);
    ends_in_cond;
    disparity;
  |]
