type decision = Use_ebs | Use_lbr

type t =
  | Length_rule of { cutoff : int; bias_to_ebs : bool }
  | Tree of Hbbp_mltree.Cart.t

let default = Length_rule { cutoff = 18; bias_to_ebs = true }
let length_only = Length_rule { cutoff = 18; bias_to_ebs = false }
let class_ebs = 0
let class_lbr = 1
let class_names = [| "EBS"; "LBR" |]

let decide t features =
  match t with
  | Length_rule { cutoff; bias_to_ebs } ->
      (* Distilled from the trained tree: flagged blocks go to EBS when
         the two sources disagree strongly (localised corruption) or when
         the block is long enough for EBS to be reliable anyway. *)
      if
        bias_to_ebs
        && features.(Feature.index_bias) > 0.5
        && (features.(Feature.index_disparity) > 0.35
           || features.(Feature.index_block_length) > 8.0)
      then Use_ebs
      else if features.(Feature.index_block_length) <= float_of_int cutoff
      then Use_lbr
      else Use_ebs
  | Tree tree ->
      if Hbbp_mltree.Cart.predict tree features = class_lbr then Use_lbr
      else Use_ebs

let to_string = function
  | Length_rule { cutoff; bias_to_ebs } ->
      Printf.sprintf "length rule (<= %d -> LBR, else EBS%s)" cutoff
        (if bias_to_ebs then "; biased -> EBS" else "")
  | Tree tree ->
      Printf.sprintf "trained tree (depth %d, %d leaves)"
        (Hbbp_mltree.Cart.depth tree)
        (Hbbp_mltree.Cart.leaf_count tree)
