(** The HBBP per-block data-source decision (paper section IV).

    The shipped default is the rule the paper's criteria search arrived
    at: {e blocks of 18 instructions or fewer take their count from LBR;
    longer blocks take it from EBS}.  A freshly trained tree
    ({!Training}) can be plugged in instead. *)

type decision = Use_ebs | Use_lbr

type t =
  | Length_rule of { cutoff : int; bias_to_ebs : bool }
      (** LBR for [block_length <= cutoff], EBS above; when [bias_to_ebs],
          bias-flagged blocks whose two estimates disagree strongly take
          EBS regardless of length (the deeper levels of the paper's
          tree). *)
  | Tree of Hbbp_mltree.Cart.t
      (** A trained classifier over {!Feature} vectors. *)

(** The paper's rule: cutoff 18, bias-flagged blocks to EBS. *)
val default : t

(** The headline rule alone (length only) — for ablation. *)
val length_only : t

(** Class indices used by tree-based criteria. *)
val class_ebs : int

val class_lbr : int
val class_names : string array

(** [decide t features] — [features] in {!Feature.names} order. *)
val decide : t -> float array -> decision

val to_string : t -> string
