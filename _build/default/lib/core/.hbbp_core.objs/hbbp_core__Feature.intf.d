lib/core/feature.mli: Hbbp_analyzer
