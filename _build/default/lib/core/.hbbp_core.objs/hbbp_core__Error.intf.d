lib/core/error.mli: Hbbp_isa Mnemonic
