lib/core/error.ml: Array Float Hashtbl Hbbp_isa List Mnemonic Option
