lib/core/feature.ml: Array Basic_block Bbec Bias Ebs_estimator Float Hbbp_analyzer Hbbp_isa Hbbp_program Instruction Lbr_estimator Static
