lib/core/training.mli: Hbbp_mltree Pipeline
