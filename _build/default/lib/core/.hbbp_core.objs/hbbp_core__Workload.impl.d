lib/core/workload.ml: Hbbp_collector Hbbp_program Image Printf Process Symbol
