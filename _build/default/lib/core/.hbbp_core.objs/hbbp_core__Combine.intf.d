lib/core/combine.mli: Bbec Bias Criteria Ebs_estimator Hbbp_analyzer Lbr_estimator Static
