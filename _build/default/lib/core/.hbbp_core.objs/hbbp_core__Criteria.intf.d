lib/core/criteria.mli: Hbbp_mltree
