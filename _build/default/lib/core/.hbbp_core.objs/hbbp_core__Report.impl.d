lib/core/report.ml: Bias Ebs_estimator Error Format Hbbp_analyzer Hbbp_isa Lbr_estimator List Mnemonic Pipeline Workload
