lib/core/criteria.ml: Array Feature Hbbp_mltree Printf
