lib/core/workload.mli: Hbbp_collector Hbbp_program Image Process
