lib/core/combine.ml: Array Bbec Criteria Ebs_estimator Feature Hbbp_analyzer Lbr_estimator Static
