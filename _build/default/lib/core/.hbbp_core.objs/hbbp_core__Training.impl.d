lib/core/training.ml: Array Bbec Criteria Ebs_estimator Feature Float Hbbp_analyzer Hbbp_mltree Lbr_estimator List Pipeline Static
