lib/core/report.mli: Format Hbbp_analyzer Pipeline
