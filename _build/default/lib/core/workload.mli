(** A profile-able workload: live code to execute plus the static view an
    analyzer would find on disk (they differ only for self-modifying
    kernels). *)

open Hbbp_program

type t = {
  name : string;
  description : string;
  live_process : Process.t;  (** What executes (live kernel text). *)
  analysis_process : Process.t;  (** What the analyzer disassembles. *)
  entry : int;
  runtime_class : Hbbp_collector.Period.runtime_class;
}

(** [of_user_image img ~entry_symbol ...] — a pure user-mode workload
    (both process views identical).
    @raise Invalid_argument if the symbol is missing. *)
val of_user_image :
  ?description:string ->
  ?runtime_class:Hbbp_collector.Period.runtime_class ->
  Image.t ->
  entry_symbol:string ->
  t

(** [with_kernel w ~disk ~live ~modules] — adds kernel images: [live]
    joins the executing process, [disk] the analysis view. *)
val with_kernel : t -> disk:Image.t -> live:Image.t -> modules:Image.t list -> t
