(** Human-readable reports over pipeline profiles. *)

(** One-paragraph run summary: instructions, cycles, overheads,
    sample/stream statistics. *)
val summary : Format.formatter -> Pipeline.profile -> unit

(** Per-mnemonic error table of one method vs the reference. *)
val error_table :
  Format.formatter -> ?top:int -> Pipeline.profile -> Hbbp_analyzer.Bbec.t ->
  unit

(** Side-by-side average weighted errors: HBBP vs LBR vs EBS. *)
val method_comparison : Format.formatter -> Pipeline.profile -> unit

(** Percentage pretty-printer, e.g. [2.13%]. *)
val pp_pct : Format.formatter -> float -> unit
