(** BBEC fusion: HBBP picks, per basic block, either the EBS or the LBR
    estimate (paper section IV.A — "HBBP does not fix the problems with
    the individual use of EBS and LBR", it chooses between them). *)

open Hbbp_analyzer

(** [fuse static ~criteria ~bias ~ebs ~lbr] — the HBBP BBEC. *)
val fuse :
  Static.t ->
  criteria:Criteria.t ->
  bias:Bias.t ->
  ebs:Ebs_estimator.t ->
  lbr:Lbr_estimator.t ->
  Bbec.t

(** Per-block decisions actually taken, for inspection/ablation. *)
val decisions :
  Static.t ->
  criteria:Criteria.t ->
  bias:Bias.t ->
  ebs:Ebs_estimator.t ->
  lbr:Lbr_estimator.t ->
  Criteria.decision array
