open Codegen

let workload () =
  let ctx = create_ctx ~seed:0x42D420L in
  let profile =
    {
      fp = Avx_fma_fp;
      fp_rate = 0.8;
      mem_rate = 0.12;
      long_rate = 0.02;
      simd_int_rate = 0.0;
    }
  in
  let params =
    {
      blocks = 10;
      mean_len = 18;
      len_jitter = 8;
      iterations = 1;
      call_rate = 0.05;
      indirect_calls = false;
      profile;
    }
  in
  let per_iteration = max 1 (estimated_instructions params) in
  let iterations = max 1 (3_000_000 / per_iteration) in
  let funcs =
    synthetic_funcs ctx ~name:"hydro_post" ~helpers:2 { params with iterations }
  in
  user_workload ~description:"Hydro post-processing (AVX/FMA heavy)"
    ~runtime_class:Hbbp_collector.Period.Minutes_1_2 ~name:"hydro-post" funcs
