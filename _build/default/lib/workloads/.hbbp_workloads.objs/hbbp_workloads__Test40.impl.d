lib/workloads/test40.ml: Codegen Hbbp_collector
