lib/workloads/training_set.mli: Hbbp_core
