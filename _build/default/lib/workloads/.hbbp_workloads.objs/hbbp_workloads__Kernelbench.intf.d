lib/workloads/kernelbench.mli: Hbbp_core
