lib/workloads/fitter.mli: Hbbp_core
