lib/workloads/clforward.mli: Hbbp_core
