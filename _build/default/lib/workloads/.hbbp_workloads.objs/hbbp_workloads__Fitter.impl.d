lib/workloads/fitter.ml: Array Asm Disasm Hbbp_collector Hbbp_core Hbbp_cpu Hbbp_isa Hbbp_program Instruction Layout List Mnemonic Operand Ring
