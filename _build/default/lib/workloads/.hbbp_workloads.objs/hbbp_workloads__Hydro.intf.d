lib/workloads/hydro.mli: Hbbp_core
