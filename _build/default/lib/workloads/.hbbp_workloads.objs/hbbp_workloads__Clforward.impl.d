lib/workloads/clforward.ml: Codegen Hbbp_collector Hbbp_isa Hbbp_program Mnemonic Operand
