lib/workloads/registry.ml: Clforward Fitter Hydro Kernelbench List Option Printf Spec String Test40 Training_set
