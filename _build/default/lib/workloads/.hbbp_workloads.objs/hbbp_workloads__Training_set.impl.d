lib/workloads/training_set.ml: Codegen Hbbp_analyzer Hbbp_collector Hbbp_core List
