lib/workloads/codegen.ml: Array Asm Hbbp_core Hbbp_cpu Hbbp_isa Hbbp_program Layout List Mnemonic Operand Printf Prng Ring
