lib/workloads/registry.mli: Hbbp_core
