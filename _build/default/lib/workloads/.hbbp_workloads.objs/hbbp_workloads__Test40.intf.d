lib/workloads/test40.mli: Hbbp_core
