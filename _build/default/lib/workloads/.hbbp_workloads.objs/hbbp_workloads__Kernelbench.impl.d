lib/workloads/kernelbench.ml: Asm Hbbp_collector Hbbp_core Hbbp_cpu Hbbp_isa Hbbp_program Image Kernel Kernel_abi Layout Mnemonic Operand Ring Symbol
