lib/workloads/codegen.mli: Asm Hbbp_collector Hbbp_core Hbbp_isa Hbbp_program Operand
