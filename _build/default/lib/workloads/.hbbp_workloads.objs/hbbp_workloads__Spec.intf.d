lib/workloads/spec.mli: Hbbp_core Hbbp_isa
