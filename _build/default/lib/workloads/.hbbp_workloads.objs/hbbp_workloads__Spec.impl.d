lib/workloads/spec.ml: Codegen Hashtbl Hbbp_collector Hbbp_isa Int64 List Printf String
