lib/workloads/hydro.ml: Codegen Hbbp_collector
