(** Workload construction toolkit.

    Builds deterministic synthetic programs in the assembler DSL with
    controllable characteristics — basic-block length distribution,
    floating-point flavour, long-latency density, memory traffic,
    call structure — the knobs that decide how EBS, LBR and HBBP behave
    on a workload.

    Register conventions: RBP holds the user data base; R12/R13/R15 are
    loop counters; R10 is the iteration counter feeding synthetic branch
    conditions; R14 is never used (clobbered by syscalls); everything
    else is scratch. *)

open Hbbp_isa
open Hbbp_program

type ctx

val create_ctx : seed:int64 -> ctx

(** Fresh unique label with the given prefix. *)
val fresh : ctx -> string -> string

(** Floating-point flavour of generated filler code. *)
type fp_flavor =
  | No_fp
  | X87_fp
  | Sse_scalar_fp
  | Sse_packed_fp
  | Avx_fp
  | Avx_fma_fp
  | Mixed_fp

type profile_params = {
  fp : fp_flavor;
  fp_rate : float;  (** Fraction of filler units that are FP. *)
  mem_rate : float;  (** Fraction of filler units touching memory. *)
  long_rate : float;  (** Fraction that are divides/sqrts (shadow-casters). *)
  simd_int_rate : float;
}

val int_only : profile_params

(** [filler ctx params ~len] — roughly [len] straight-line instructions
    drawn from the weighted pools.  Never touches RSP/RBP/R10/R12-R15 or
    control flow; x87 units keep the FP stack balanced. *)
val filler : ctx -> profile_params -> len:int -> Asm.item list

(** [counted_loop ctx ~reg ~times body] — [body] repeated [times] times
    using [reg] as the down-counter. *)
val counted_loop :
  ctx -> reg:Operand.gpr -> times:int -> Asm.item list -> Asm.item list

(** [data_init ~words] — a preamble storing nonzero values into the first
    [words] 8-byte slots of the user data region. *)
val data_init : ctx -> words:int -> Asm.item list

(** Parameters of a synthetic function body. *)
type func_params = {
  blocks : int;  (** Conditional-skip chained blocks per iteration. *)
  mean_len : int;  (** Mean filler length per block. *)
  len_jitter : int;  (** Uniform +- jitter on block length. *)
  iterations : int;  (** Outer-loop trip count. *)
  call_rate : float;  (** Chance a block ends by calling a helper. *)
  indirect_calls : bool;  (** Use function-pointer calls (OO style). *)
  profile : profile_params;
}

(** [synthetic_funcs ctx ~name ~helpers params] — the main function plus
    [helpers] small callees.  The body is a counted loop over a chain of
    blocks separated by data-dependent (iteration-counter keyed)
    conditional skips; all branches are forward, so termination is
    structural. *)
val synthetic_funcs :
  ctx -> name:string -> helpers:int -> func_params -> Asm.func list

(** [program name funcs] — assembles at the standard user base with a
    [main] that sets up RBP and calls [entry] (the first function), and
    wraps everything into a workload. *)
val user_workload :
  ?description:string ->
  ?runtime_class:Hbbp_collector.Period.runtime_class ->
  name:string ->
  Asm.func list ->
  Hbbp_core.Workload.t

(** Estimated dynamic instructions per call of a synthetic function —
    used to pick [iterations] for a target run length. *)
val estimated_instructions : func_params -> int
