open Codegen

type def = {
  name : string;
  seed : int64;
  blocks : int;
  mean_len : int;
  len_jitter : int;
  call_rate : float;
  helpers : int;
  profile : profile_params;
  target : int;
}

let m = 1_000_000

let defs =
  [
    { name = "train-short-int"; seed = 0xA1L; blocks = 150; mean_len = 3;
      len_jitter = 1; call_rate = 0.1; helpers = 4;
      profile = int_only; target = 4 * m };
    { name = "train-mid-int"; seed = 0xA2L; blocks = 120; mean_len = 8;
      len_jitter = 4; call_rate = 0.05; helpers = 2;
      profile = int_only; target = 4 * m };
    { name = "train-long-fp"; seed = 0xA3L; blocks = 80; mean_len = 24;
      len_jitter = 9; call_rate = 0.0; helpers = 0;
      profile = { fp = Sse_packed_fp; fp_rate = 0.5; mem_rate = 0.2;
                  long_rate = 0.005; simd_int_rate = 0.0 };
      target = 4 * m };
    { name = "train-longer"; seed = 0xA4L; blocks = 50; mean_len = 34;
      len_jitter = 12; call_rate = 0.0; helpers = 0;
      profile = { fp = Avx_fp; fp_rate = 0.4; mem_rate = 0.2;
                  long_rate = 0.0; simd_int_rate = 0.0 };
      target = 4 * m };
    { name = "train-shadow"; seed = 0xA5L; blocks = 100; mean_len = 10;
      len_jitter = 6; call_rate = 0.0; helpers = 0;
      profile = { fp = Sse_scalar_fp; fp_rate = 0.3; mem_rate = 0.2;
                  long_rate = 0.08; simd_int_rate = 0.0 };
      target = 4 * m };
    { name = "train-branchy"; seed = 0xA6L; blocks = 160; mean_len = 4;
      len_jitter = 2; call_rate = 0.4; helpers = 8;
      profile = int_only; target = 4 * m };
    { name = "train-x87"; seed = 0xA7L; blocks = 80; mean_len = 6;
      len_jitter = 3; call_rate = 0.1; helpers = 2;
      profile = { fp = X87_fp; fp_rate = 0.4; mem_rate = 0.2;
                  long_rate = 0.03; simd_int_rate = 0.0 };
      target = 4 * m };
    { name = "train-mixed"; seed = 0xA8L; blocks = 120; mean_len = 12;
      len_jitter = 8; call_rate = 0.15; helpers = 4;
      profile = { fp = Mixed_fp; fp_rate = 0.35; mem_rate = 0.2;
                  long_rate = 0.03; simd_int_rate = 0.05 };
      target = 4 * m };
  ]

let names = List.map (fun d -> d.name) defs

let build d =
  let ctx = create_ctx ~seed:d.seed in
  let params =
    {
      blocks = d.blocks;
      mean_len = d.mean_len;
      len_jitter = d.len_jitter;
      iterations = 1;
      call_rate = d.call_rate;
      indirect_calls = false;
      profile = d.profile;
    }
  in
  let per_iteration = max 1 (estimated_instructions params) in
  let iterations = max 1 (d.target / per_iteration) in
  let funcs =
    synthetic_funcs ctx ~name:("train_" ^ d.name) ~helpers:d.helpers
      { params with iterations }
  in
  user_workload ~description:"HBBP training workload"
    ~runtime_class:Hbbp_collector.Period.Seconds ~name:d.name funcs

let all () = List.map build defs

let total_static_blocks () =
  List.fold_left
    (fun acc (w : Hbbp_core.Workload.t) ->
      let static = Hbbp_analyzer.Static.create_exn w.analysis_process in
      acc + Hbbp_analyzer.Static.total_blocks static)
    0 (all ())
