open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu

type variant = X87 | Sse | Avx | Avx_noinline

let variant_name = function
  | X87 -> "fitter-x87"
  | Sse -> "fitter-sse"
  | Avx -> "fitter-avx"
  | Avx_noinline -> "fitter-avx-noinline"

let all_variants = [ X87; Sse; Avx; Avx_noinline ]
let tracks = 40_000

(* Data layout (offsets from RBP): measurement points at 0, fit
   parameters at 0x400, residuals at 0x500. *)
let pt disp = mem Operand.RBP ~index:Operand.R13 ~scale:8 ~disp
let par disp = mem Operand.RBP ~disp:(0x400 + disp)

(* Per-point math kernel, one per variant. *)
let kernel_x87 =
  [
    i Mnemonic.FLD [ pt 0 ];
    i Mnemonic.FMUL [ par 0 ];
    i Mnemonic.FLD [ pt 8 ];
    i Mnemonic.FMUL [ par 8 ];
    i Mnemonic.FADD [ st 1 ];
    i Mnemonic.FXCH [ st 1 ];
    i Mnemonic.FSTP [ par 0x20 ];
    i Mnemonic.FLD [ pt 16 ];
    i Mnemonic.FSUB [ par 16 ];
    i Mnemonic.FMUL [ st 1 ];
    i Mnemonic.FABS [];
    i Mnemonic.FADD [ par 0x28 ];
    i Mnemonic.FSTP [ par 0x28 ];
    i Mnemonic.FSTP [ par 0x30 ];
  ]

let kernel_sse =
  [
    i Mnemonic.MOVSD [ xmm 2; pt 0 ];
    i Mnemonic.MULSD [ xmm 2; xmm 0 ];
    i Mnemonic.MOVSD [ xmm 3; pt 8 ];
    i Mnemonic.MULSD [ xmm 3; xmm 1 ];
    i Mnemonic.ADDSD [ xmm 2; xmm 3 ];
    i Mnemonic.MOVSD [ xmm 4; pt 16 ];
    i Mnemonic.SUBSD [ xmm 4; xmm 2 ];
    i Mnemonic.MULSD [ xmm 4; xmm 4 ];
    i Mnemonic.ADDSD [ xmm 5; xmm 4 ];
  ]

let kernel_avx =
  [
    i Mnemonic.VMOVAPS [ ymm 2; mem Operand.RBP ~disp:0 ];
    i Mnemonic.VMULPS [ ymm 2; ymm 2; ymm 0 ];
    i Mnemonic.VMOVAPS [ ymm 3; mem Operand.RBP ~disp:32 ];
    i Mnemonic.VMULPS [ ymm 3; ymm 3; ymm 1 ];
    i Mnemonic.VADDPS [ ymm 2; ymm 2; ymm 3 ];
    i Mnemonic.VMOVAPS [ ymm 4; mem Operand.RBP ~disp:64 ];
    i Mnemonic.VSUBPS [ ymm 4; ymm 4; ymm 2 ];
    i Mnemonic.VMULPS [ ymm 4; ymm 4; ymm 4 ];
    i Mnemonic.VADDPS [ ymm 5; ymm 5; ymm 4 ];
  ]

(* The regression build: the same AVX math, but every vector operation
   goes through an out-of-line helper the compiler failed to inline. *)
let vop_helpers =
  [
    func "vop_mul_a" [ i Mnemonic.VMULPS [ ymm 2; ymm 2; ymm 0 ]; i Mnemonic.RET_NEAR [] ];
    func "vop_mul_b" [ i Mnemonic.VMULPS [ ymm 3; ymm 3; ymm 1 ]; i Mnemonic.RET_NEAR [] ];
    func "vop_add" [ i Mnemonic.VADDPS [ ymm 2; ymm 2; ymm 3 ]; i Mnemonic.RET_NEAR [] ];
    func "vop_sub" [ i Mnemonic.VSUBPS [ ymm 4; ymm 4; ymm 2 ]; i Mnemonic.RET_NEAR [] ];
    func "vop_sq" [ i Mnemonic.VMULPS [ ymm 4; ymm 4; ymm 4 ]; i Mnemonic.RET_NEAR [] ];
    func "vop_acc" [ i Mnemonic.VADDPS [ ymm 5; ymm 5; ymm 4 ]; i Mnemonic.RET_NEAR [] ];
  ]

let kernel_avx_noinline =
  [
    i Mnemonic.VMOVAPS [ ymm 2; mem Operand.RBP ~disp:0 ];
    i Mnemonic.CALL_NEAR [ L "vop_mul_a" ];
    i Mnemonic.VMOVAPS [ ymm 3; mem Operand.RBP ~disp:32 ];
    i Mnemonic.CALL_NEAR [ L "vop_mul_b" ];
    i Mnemonic.CALL_NEAR [ L "vop_add" ];
    i Mnemonic.VMOVAPS [ ymm 4; mem Operand.RBP ~disp:64 ];
    i Mnemonic.CALL_NEAR [ L "vop_sub" ];
    i Mnemonic.CALL_NEAR [ L "vop_sq" ];
    i Mnemonic.CALL_NEAR [ L "vop_acc" ];
  ]

(* Variant-specific pieces: parameter loads, the divide of the solve
   step, the convergence compare, the update. *)
let setup = function
  | X87 ->
      [ i Mnemonic.FLD [ par 0 ]; i Mnemonic.FSTP [ par 0x38 ];
        i Mnemonic.XOR [ rax; rax ] ]
  | Sse ->
      [ i Mnemonic.MOVSD [ xmm 0; par 0 ]; i Mnemonic.MOVSD [ xmm 1; par 8 ];
        i Mnemonic.XORPS [ xmm 5; xmm 5 ] ]
  | Avx | Avx_noinline ->
      [ i Mnemonic.VBROADCASTSS [ ymm 0; par 0 ];
        i Mnemonic.VBROADCASTSS [ ymm 1; par 8 ];
        i Mnemonic.VXORPS [ ymm 5; ymm 5; ymm 5 ] ]

let solve = function
  | X87 ->
      [ i Mnemonic.FLD [ par 0x28 ]; i Mnemonic.FLD [ par 0x40 ];
        i Mnemonic.FDIV [ st 1 ]; i Mnemonic.FSTP [ par 0x48 ];
        i Mnemonic.FSTP [ par 0x50 ] ]
  | Sse ->
      (* Reciprocal-multiply solve: the compiler strength-reduced the
         division away in this build, so EBS sees no long-latency shadow
         here (the AVX build keeps a real divide). *)
      [ i Mnemonic.MOVSD [ xmm 6; par 0x40 ]; i Mnemonic.MULSD [ xmm 6; xmm 5 ];
        i Mnemonic.SQRTSS [ xmm 7; xmm 5 ] ]
  | Avx | Avx_noinline ->
      [ i Mnemonic.VMOVAPS [ ymm 6; mem Operand.RBP ~disp:96 ];
        i Mnemonic.VDIVPS [ ymm 6; ymm 6; ymm 5 ];
        i Mnemonic.VSQRTPS [ ymm 7; ymm 5 ] ]

let converge_test skip_label = function
  | X87 ->
      [ i Mnemonic.FLD [ par 0x48 ]; i Mnemonic.FCOMI [ st 1 ];
        i Mnemonic.FSTP [ par 0x58 ]; i Mnemonic.JB [ L skip_label ] ]
  | Sse ->
      [ i Mnemonic.UCOMISD [ xmm 6; xmm 7 ]; i Mnemonic.JB [ L skip_label ] ]
  | Avx | Avx_noinline ->
      [ i Mnemonic.VCOMISS [ xmm 6; xmm 7 ]; i Mnemonic.JB [ L skip_label ] ]

let update = function
  | X87 ->
      [ i Mnemonic.FLD [ par 0x48 ]; i Mnemonic.FADD [ par 0 ];
        i Mnemonic.FSTP [ par 0 ] ]
  | Sse ->
      [ i Mnemonic.ADDSD [ xmm 0; xmm 6 ]; i Mnemonic.MOVSD [ par 0; xmm 0 ] ]
  | Avx | Avx_noinline ->
      [ i Mnemonic.VADDPS [ ymm 0; ymm 0; ymm 6 ];
        i Mnemonic.VMOVAPS [ mem Operand.RBP ~disp:128; ymm 0 ] ]

let kernel = function
  | X87 -> kernel_x87
  | Sse -> kernel_sse
  | Avx -> kernel_avx
  | Avx_noinline -> kernel_avx_noinline

(* Scalar variants walk 4 measurement points; vector variants process
   them all at once. *)
let points = function X87 | Sse -> 4 | Avx | Avx_noinline -> 1

let weight_helper =
  func "fit_weight"
    [
      i Mnemonic.MOV [ rax; mem Operand.RBP ~disp:0x600 ];
      i Mnemonic.ADD [ rax; imm 3 ];
      i Mnemonic.AND [ rax; imm 1023 ];
      i Mnemonic.MOV [ mem Operand.RBP ~disp:0x600; rax ];
      i Mnemonic.RET_NEAR [];
    ]

let main_func variant =
  let v = variant in
  func "fitter_main"
    ([
       (* Fill the measurement arrays once. *)
       i Mnemonic.MOV [ rcx; imm 512 ];
       label "finit";
       i Mnemonic.MOV
         [ mem Operand.RBP ~index:Operand.RCX ~scale:8 ~disp:(-8); rcx ];
       i Mnemonic.DEC [ rcx ];
       i Mnemonic.JNZ [ L "finit" ];
       i Mnemonic.MOV [ r12; imm tracks ];
       label "ftrack";
     ]
    @ setup v
    @ [ i Mnemonic.MOV [ r13; imm (points v) ]; label "fpoint" ]
    @ kernel v
    @ [ i Mnemonic.DEC [ r13 ]; i Mnemonic.JNZ [ L "fpoint" ] ]
    @ solve v
    @ converge_test "fconv" v
    @ update v
    @ [ label "fconv"; i Mnemonic.CALL_NEAR [ L "fit_weight" ] ]
    @ [
        (* Residual normalisation: a short inner loop — more short, hot
           blocks for the Table 3 view. *)
        i Mnemonic.MOV [ r13; imm 3 ];
        label "fnorm";
        i Mnemonic.MOV [ rdx; mem Operand.RBP ~index:Operand.R13 ~scale:8 ~disp:0x500 ];
        i Mnemonic.ADD [ rdx; rdx ];
        i Mnemonic.MOV [ mem Operand.RBP ~index:Operand.R13 ~scale:8 ~disp:0x500; rdx ];
        i Mnemonic.DEC [ r13 ];
        i Mnemonic.JNZ [ L "fnorm" ];
        i Mnemonic.DEC [ r12 ];
        i Mnemonic.JNZ [ L "ftrack" ];
        i Mnemonic.RET_NEAR [];
      ])

(* ------------------------------------------------------------------ *)
(* Layout tuning.

   The LBR entry[0] quirk is a deterministic property of a branch's
   address (Pmu_model.is_quirk_branch).  To reproduce the paper's
   section VIII.C — the SSE variant showing 13% LBR error while the AVX
   variant's LBR is clean — the SSE build must place its hottest
   backedge on a quirky address and the other builds must not.  Real
   code hits or dodges the quirk by the same accident of layout; we
   steer the accident by padding the image with NOPs until the desired
   pattern holds (for the default PMU model). *)

let pad_func k =
  func "fit_pad"
    (List.init (max 1 k) (fun _ -> i Mnemonic.NOP []) @ [ i Mnemonic.RET_NEAR [] ])

let funcs_of variant ~pad =
  let start =
    func "_start"
      [
        i Mnemonic.MOV [ rbp; imm Layout.user_data_base ];
        i Mnemonic.CALL_NEAR [ L "fitter_main" ];
        i Mnemonic.RET_NEAR [];
      ]
  in
  let rest =
    match variant with
    | Avx_noinline -> (main_func variant :: weight_helper :: vop_helpers)
    | X87 | Sse | Avx -> [ main_func variant; weight_helper ]
  in
  start :: pad_func pad :: rest

let assemble_variant variant ~pad =
  Asm.assemble ~name:(variant_name variant) ~base:Layout.user_code_base
    ~ring:Ring.User (funcs_of variant ~pad)

let branch_sources img =
  match Disasm.image img with
  | Error _ -> []
  | Ok decoded ->
      Array.to_list decoded
      |> List.filter_map (fun (d : Disasm.decoded) ->
             if Instruction.is_branch d.instr then
               Some (d.addr, Disasm.branch_target d)
             else None)

(* Source address of the branch that jumps back to [label]. *)
let backedge_to variant ~pad ~label_name =
  let labels =
    Asm.label_addresses ~name:(variant_name variant)
      ~base:Layout.user_code_base ~ring:Ring.User (funcs_of variant ~pad)
  in
  match List.assoc_opt label_name labels with
  | None -> None
  | Some target ->
      branch_sources (assemble_variant variant ~pad)
      |> List.find_map (fun (src, tgt) ->
             if tgt = Some target then Some src else None)

let quirk model src = Hbbp_cpu.Pmu_model.is_quirk_branch model src

let layout_ok variant ~pad =
  let model = Hbbp_cpu.Pmu_model.default in
  let img = assemble_variant variant ~pad in
  let hot = backedge_to variant ~pad ~label_name:"fnorm" in
  let all_quirk_free () =
    List.for_all (fun (src, _) -> not (quirk model src)) (branch_sources img)
  in
  match variant with
  | Sse -> (
      (* The hot short-loop backedge must be quirky; everything else
         clean so the bias stays localised. *)
      match hot with
      | Some src ->
          quirk model src
          && List.for_all
               (fun (s, _) -> s = src || not (quirk model s))
               (branch_sources img)
      | None -> false)
  | X87 | Avx | Avx_noinline -> all_quirk_free ()

let tuned_pad variant =
  let rec search pad =
    if pad > 2000 then 0 (* fall back: untuned layout *)
    else if layout_ok variant ~pad then pad
    else search (pad + 1)
  in
  search 0

let workload variant =
  let img = assemble_variant variant ~pad:(tuned_pad variant) in
  Hbbp_core.Workload.of_user_image
    ~description:"3D track fitter (low-latency scientific kernel)"
    ~runtime_class:Hbbp_collector.Period.Seconds img ~entry_symbol:"_start"
