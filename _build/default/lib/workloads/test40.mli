(** Test40 — a Geant4-like particle-transport workload (paper
    section VIII.B): "complex, object-oriented" code with short methods
    reached through virtual dispatch, which is "difficult to deal with
    using EBS, because its methods are short". *)

val workload : unit -> Hbbp_core.Workload.t
