open Codegen

type def = {
  name : string;
  blocks : int;
  mean_len : int;
  len_jitter : int;
  call_rate : float;
  indirect_calls : bool;
  helpers : int;
  profile : profile_params;
  target : int;  (* dynamic instructions *)
}

let prof ?(fp = No_fp) ?(fp_rate = 0.0) ?(mem = 0.15) ?(long = 0.0)
    ?(simd = 0.0) () =
  { fp; fp_rate; mem_rate = mem; long_rate = long; simd_int_rate = simd }

let m = 1_000_000

let defs =
  [
    { name = "perlbench"; blocks = 40; mean_len = 5; len_jitter = 3;
      call_rate = 0.3; indirect_calls = false; helpers = 6;
      profile = prof ~mem:0.2 (); target = 4 * m };
    { name = "bzip2"; blocks = 25; mean_len = 8; len_jitter = 4;
      call_rate = 0.05; indirect_calls = false; helpers = 2;
      profile = prof ~mem:0.3 (); target = 4 * m };
    { name = "gcc"; blocks = 80; mean_len = 4; len_jitter = 2;
      call_rate = 0.2; indirect_calls = false; helpers = 8;
      profile = prof ~mem:0.2 (); target = 4 * m };
    { name = "mcf"; blocks = 15; mean_len = 6; len_jitter = 3;
      call_rate = 0.05; indirect_calls = false; helpers = 1;
      profile = prof ~mem:0.45 (); target = 3 * m };
    { name = "gobmk"; blocks = 50; mean_len = 5; len_jitter = 3;
      call_rate = 0.35; indirect_calls = false; helpers = 6;
      profile = prof ~mem:0.2 (); target = 4 * m };
    { name = "hmmer"; blocks = 12; mean_len = 9; len_jitter = 5;
      call_rate = 0.0; indirect_calls = false; helpers = 0;
      profile = prof ~mem:0.25 ~long:0.06 (); target = 4 * m };
    { name = "sjeng"; blocks = 35; mean_len = 5; len_jitter = 3;
      call_rate = 0.2; indirect_calls = false; helpers = 4;
      profile = prof ~mem:0.2 (); target = 4 * m };
    { name = "libquantum"; blocks = 6; mean_len = 7; len_jitter = 3;
      call_rate = 0.0; indirect_calls = false; helpers = 0;
      profile = prof ~mem:0.2 ~simd:0.5 (); target = 3 * m };
    { name = "h264ref"; blocks = 30; mean_len = 7; len_jitter = 4;
      call_rate = 0.1; indirect_calls = false; helpers = 3;
      profile = prof ~mem:0.3 ~simd:0.2 (); target = 4 * m };
    { name = "x264ref"; blocks = 28; mean_len = 7; len_jitter = 4;
      call_rate = 0.1; indirect_calls = false; helpers = 3;
      profile = prof ~mem:0.3 ~simd:0.25 (); target = 4 * m };
    { name = "omnetpp"; blocks = 45; mean_len = 3; len_jitter = 1;
      call_rate = 0.5; indirect_calls = true; helpers = 10;
      profile = prof ~mem:0.25 (); target = 4 * m };
    { name = "astar"; blocks = 20; mean_len = 5; len_jitter = 2;
      call_rate = 0.15; indirect_calls = false; helpers = 2;
      profile = prof ~mem:0.35 (); target = 3 * m };
    { name = "xalancbmk"; blocks = 60; mean_len = 4; len_jitter = 2;
      call_rate = 0.45; indirect_calls = true; helpers = 8;
      profile = prof ~mem:0.25 (); target = 4 * m };
    { name = "milc"; blocks = 15; mean_len = 12; len_jitter = 5;
      call_rate = 0.05; indirect_calls = false; helpers = 1;
      profile = prof ~fp:Sse_packed_fp ~fp_rate:0.5 ~long:0.02 ();
      target = 4 * m };
    { name = "namd"; blocks = 12; mean_len = 22; len_jitter = 8;
      call_rate = 0.05; indirect_calls = false; helpers = 1;
      profile = prof ~fp:Sse_packed_fp ~fp_rate:0.6 ~long:0.02 ();
      target = 4 * m };
    { name = "dealII"; blocks = 30; mean_len = 8; len_jitter = 4;
      call_rate = 0.25; indirect_calls = true; helpers = 5;
      profile = prof ~fp:Mixed_fp ~fp_rate:0.4 (); target = 4 * m };
    { name = "soplex"; blocks = 20; mean_len = 10; len_jitter = 5;
      call_rate = 0.1; indirect_calls = false; helpers = 2;
      profile = prof ~fp:Sse_scalar_fp ~fp_rate:0.45 ~long:0.05 ();
      target = 4 * m };
    { name = "povray"; blocks = 35; mean_len = 6; len_jitter = 3;
      call_rate = 0.3; indirect_calls = false; helpers = 6;
      profile = prof ~fp:Sse_scalar_fp ~fp_rate:0.5 ~long:0.04 ();
      target = 4 * m };
    { name = "gamess"; blocks = 25; mean_len = 4; len_jitter = 2;
      call_rate = 0.25; indirect_calls = false; helpers = 4;
      profile = prof ~fp:X87_fp ~fp_rate:0.45 (); target = 4 * m };
    { name = "lbm"; blocks = 8; mean_len = 26; len_jitter = 8;
      call_rate = 0.0; indirect_calls = false; helpers = 0;
      profile = prof ~fp:Sse_packed_fp ~fp_rate:0.55 ~long:0.08 ();
      target = 4 * m };
    { name = "sphinx3"; blocks = 25; mean_len = 6; len_jitter = 3;
      call_rate = 0.15; indirect_calls = false; helpers = 3;
      profile = prof ~fp:Sse_scalar_fp ~fp_rate:0.35 ~mem:0.3 ();
      target = 4 * m };
  ]

let names = List.map (fun d -> d.name) defs

let seed_of_name name =
  (* Stable per-benchmark seed so each program is reproducible alone. *)
  let h = Hashtbl.hash name in
  Int64.of_int ((h * 2654435761) land 0x3FFFFFFF)

let build (d : def) =
  let ctx = create_ctx ~seed:(seed_of_name d.name) in
  let params_for_estimate =
    {
      blocks = d.blocks;
      mean_len = d.mean_len;
      len_jitter = d.len_jitter;
      iterations = 1;
      call_rate = d.call_rate;
      indirect_calls = d.indirect_calls;
      profile = d.profile;
    }
  in
  let per_iteration = max 1 (estimated_instructions params_for_estimate) in
  let iterations = max 1 (d.target / per_iteration) in
  let funcs =
    synthetic_funcs ctx ~name:("spec_" ^ d.name) ~helpers:d.helpers
      { params_for_estimate with iterations }
  in
  user_workload
    ~description:(Printf.sprintf "SPEC-like benchmark %s" d.name)
    ~runtime_class:Hbbp_collector.Period.Minutes_spec ~name:d.name funcs

let find name =
  match List.find_opt (fun d -> String.equal d.name name) defs with
  | Some d -> build d
  | None -> invalid_arg (Printf.sprintf "Spec.find: unknown benchmark %S" name)

let all () = List.map build defs
let buggy_benchmark = "x264ref"
let bug_mnemonic = Hbbp_isa.Mnemonic.MOV
