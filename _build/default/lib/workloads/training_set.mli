(** The non-SPEC training corpus (paper section IV.B): "approximately
    1,100 basic blocks of training input from non-SPEC benchmarks",
    spanning the block-length, FP-flavour and long-latency spectrum so
    the classifier sees both EBS- and LBR-favoured regimes. *)

val names : string list
val all : unit -> Hbbp_core.Workload.t list

(** Static basic-block count over the whole corpus (for the ~1,100
    sanity check). *)
val total_static_blocks : unit -> int
