(** The synthetic kernel benchmark (paper section VIII.D): a prime-number
    search compiled once as a user function ([hello_u]) and once as a
    kernel-module function ([hello.ko]'s [hello_k]), triggered from user
    space through a syscall, with calls separated in time by filler work.

    Software instrumentation sees only [hello_u]; HBBP sees both — the
    Table 7 demonstration. *)

val syscall_number : int

(** User image + disk/live kernels + hello.ko module, all wired up. *)
val workload : unit -> Hbbp_core.Workload.t

(** Name of the user-space function, for per-symbol views. *)
val user_function : string

val kernel_function : string

(** Candidates searched per call (primes in (2, limit]). *)
val prime_limit : int
