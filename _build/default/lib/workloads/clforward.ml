open Hbbp_isa
open Hbbp_program.Asm

type variant = Before | After

let variant_name = function
  | Before -> "clforward-before"
  | After -> "clforward-after"

let elements = 64  (* per reduction *)
let reductions = function Before -> 6_000 | After -> 6_000

(* Scalar AVX reduction: one element per iteration — the broken build. *)
let scalar_body =
  [
    i Mnemonic.VMOVSS [ xmm 1; mem Operand.RBP ~index:Operand.R13 ~scale:8 ];
    i Mnemonic.VMULSS [ xmm 1; xmm 1; xmm 2 ];
    i Mnemonic.VADDSS [ xmm 0; xmm 0; xmm 1 ];
    i Mnemonic.VMOVSS [ xmm 3; mem Operand.RBP ~index:Operand.R13 ~scale:8 ~disp:512 ];
    i Mnemonic.VMULSS [ xmm 3; xmm 3; xmm 3 ];
    i Mnemonic.VADDSS [ xmm 0; xmm 0; xmm 3 ];
  ]

(* Packed AVX reduction: 8 elements per iteration — the fixed build. *)
let packed_body =
  [
    i Mnemonic.VMOVAPS [ ymm 1; mem Operand.RBP ~index:Operand.R13 ~scale:8 ];
    i Mnemonic.VMULPS [ ymm 1; ymm 1; ymm 2 ];
    i Mnemonic.VADDPS [ ymm 0; ymm 0; ymm 1 ];
    i Mnemonic.VMOVAPS [ ymm 3; mem Operand.RBP ~index:Operand.R13 ~scale:8 ~disp:512 ];
    i Mnemonic.VFMADD213PS [ ymm 3; ymm 3; ymm 0 ];
    i Mnemonic.VMOVAPS [ ymm 0; ymm 3 ];
  ]

let main_func variant =
  let inner_iters, body =
    match variant with
    | Before -> (elements, scalar_body)
    | After -> (elements / 8, packed_body)
  in
  func "clforward_main"
    ([
       i Mnemonic.MOV [ r12; imm (reductions variant) ];
       label "clred";
       i Mnemonic.VXORPS [ ymm 0; ymm 0; ymm 0 ];
       i Mnemonic.VBROADCASTSS [ ymm 2; mem Operand.RBP ~disp:0x700 ];
       i Mnemonic.MOV [ r13; imm inner_iters ];
       label "clelem";
     ]
    @ body
    @ [
        i Mnemonic.DEC [ r13 ];
        i Mnemonic.JNZ [ L "clelem" ];
        (* Base (scalar integer) bookkeeping between reductions. *)
        i Mnemonic.MOV [ rax; mem Operand.RBP ~disp:0x708 ];
        i Mnemonic.ADD [ rax; imm 1 ];
        i Mnemonic.MOV [ mem Operand.RBP ~disp:0x708; rax ];
        i Mnemonic.VMOVAPS [ mem Operand.RBP ~disp:0x740; ymm 0 ];
        i Mnemonic.DEC [ r12 ];
        i Mnemonic.JNZ [ L "clred" ];
        i Mnemonic.RET_NEAR [];
      ])

let workload variant =
  Codegen.user_workload
    ~description:"CLForward reduction (vectorization case study)"
    ~runtime_class:Hbbp_collector.Period.Seconds ~name:(variant_name variant)
    [ main_func variant ]
