open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu

type ctx = { prng : Prng.t; mutable uid : int }

let create_ctx ~seed = { prng = Prng.create ~seed; uid = 0 }

let fresh ctx prefix =
  ctx.uid <- ctx.uid + 1;
  Printf.sprintf "%s_%d" prefix ctx.uid

type fp_flavor =
  | No_fp
  | X87_fp
  | Sse_scalar_fp
  | Sse_packed_fp
  | Avx_fp
  | Avx_fma_fp
  | Mixed_fp

type profile_params = {
  fp : fp_flavor;
  fp_rate : float;
  mem_rate : float;
  long_rate : float;
  simd_int_rate : float;
}

let int_only =
  { fp = No_fp; fp_rate = 0.0; mem_rate = 0.15; long_rate = 0.0;
    simd_int_rate = 0.0 }

(* Scratch integer registers (RSP/RBP/R10/R12-R15 excluded by convention,
   R14 reserved for the kernel). *)
let scratch =
  [| Operand.RAX; Operand.RBX; Operand.RCX; Operand.RDX; Operand.RSI;
     Operand.RDI; Operand.R8; Operand.R9; Operand.R11 |]

let rnd_gpr ctx = scratch.(Prng.int ctx.prng (Array.length scratch))
let rnd_xmm ctx = xmm (Prng.int ctx.prng 16)
let rnd_ymm ctx = ymm (Prng.int ctx.prng 16)

let rnd_gpr_op ctx = R (Operand.Gpr (rnd_gpr ctx))

(* 8-byte aligned reference into the user data region. *)
let rnd_mem ctx = mem Operand.RBP ~disp:(8 * Prng.int ctx.prng 65536)

let rnd_imm ctx = imm (1 + Prng.int ctx.prng 1000)

(* --- filler unit pools; each returns a short item list ---------------- *)

let int_unit ctx =
  match Prng.int ctx.prng 8 with
  | 0 -> [ i Mnemonic.ADD [ rnd_gpr_op ctx; rnd_imm ctx ] ]
  | 1 -> [ i Mnemonic.SUB [ rnd_gpr_op ctx; rnd_imm ctx ] ]
  | 2 -> [ i Mnemonic.XOR [ rnd_gpr_op ctx; rnd_gpr_op ctx ] ]
  | 3 -> [ i Mnemonic.AND [ rnd_gpr_op ctx; rnd_imm ctx ] ]
  | 4 -> [ i Mnemonic.MOV [ rnd_gpr_op ctx; rnd_imm ctx ] ]
  | 5 -> [ i Mnemonic.IMUL [ rnd_gpr_op ctx; rnd_gpr_op ctx ] ]
  | 6 -> [ i Mnemonic.SHL [ rnd_gpr_op ctx; imm (Prng.int ctx.prng 5) ] ]
  | _ ->
      [
        i Mnemonic.LEA
          [
            rnd_gpr_op ctx;
            mem (rnd_gpr ctx) ~index:(rnd_gpr ctx) ~scale:8
              ~disp:(Prng.int ctx.prng 64);
          ];
      ]

let mem_unit ctx =
  if Prng.bool ctx.prng 0.6 then
    [ i Mnemonic.MOV [ rnd_gpr_op ctx; rnd_mem ctx ] ]
  else [ i Mnemonic.MOV [ rnd_mem ctx; rnd_gpr_op ctx ] ]

let simd_int_unit ctx =
  match Prng.int ctx.prng 4 with
  | 0 -> [ i Mnemonic.PADDD [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 1 -> [ i Mnemonic.PXOR [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 2 -> [ i Mnemonic.PMULLD [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | _ -> [ i Mnemonic.MOVDQA [ rnd_xmm ctx; rnd_mem ctx ] ]

let sse_scalar_unit ctx =
  match Prng.int ctx.prng 6 with
  | 0 -> [ i Mnemonic.ADDSD [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 1 -> [ i Mnemonic.MULSD [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 2 -> [ i Mnemonic.SUBSS [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 3 -> [ i Mnemonic.MOVSD [ rnd_xmm ctx; rnd_mem ctx ] ]
  | 4 -> [ i Mnemonic.MOVSD [ rnd_mem ctx; rnd_xmm ctx ] ]
  | _ -> [ i Mnemonic.CVTSI2SD [ rnd_xmm ctx; rnd_gpr_op ctx ] ]

let sse_packed_unit ctx =
  match Prng.int ctx.prng 6 with
  | 0 -> [ i Mnemonic.ADDPS [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 1 -> [ i Mnemonic.MULPS [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 2 -> [ i Mnemonic.SUBPS [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | 3 -> [ i Mnemonic.MOVAPS [ rnd_xmm ctx; rnd_mem ctx ] ]
  | 4 -> [ i Mnemonic.SHUFPS [ rnd_xmm ctx; rnd_xmm ctx; imm 0x1B ] ]
  | _ -> [ i Mnemonic.XORPS [ rnd_xmm ctx; rnd_xmm ctx ] ]

let avx_unit ctx =
  match Prng.int ctx.prng 6 with
  | 0 -> [ i Mnemonic.VADDPS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | 1 -> [ i Mnemonic.VMULPS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | 2 -> [ i Mnemonic.VSUBPS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | 3 -> [ i Mnemonic.VMOVAPS [ rnd_ymm ctx; rnd_mem ctx ] ]
  | 4 -> [ i Mnemonic.VXORPS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | _ -> [ i Mnemonic.VBROADCASTSS [ rnd_ymm ctx; rnd_xmm ctx ] ]

let fma_unit ctx =
  match Prng.int ctx.prng 3 with
  | 0 -> [ i Mnemonic.VFMADD213PS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | 1 -> [ i Mnemonic.VFMADD213PD [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
  | _ -> [ i Mnemonic.VADDPD [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]

(* x87 units keep the register stack balanced (push, ops, pop-store). *)
let x87_unit ctx =
  let m = rnd_mem ctx in
  match Prng.int ctx.prng 4 with
  | 0 -> [ i Mnemonic.FLD [ m ]; i Mnemonic.FADD [ rnd_mem ctx ];
           i Mnemonic.FSTP [ rnd_mem ctx ] ]
  | 1 -> [ i Mnemonic.FLD [ m ]; i Mnemonic.FMUL [ rnd_mem ctx ];
           i Mnemonic.FSTP [ rnd_mem ctx ] ]
  | 2 -> [ i Mnemonic.FILD [ m ]; i Mnemonic.FCHS []; i Mnemonic.FSTP [ m ] ]
  | _ -> [ i Mnemonic.FLD [ m ]; i Mnemonic.FABS []; i Mnemonic.FSTP [ m ] ]

let resolve_flavor ctx = function
  | Mixed_fp -> (
      match Prng.int ctx.prng 4 with
      | 0 -> X87_fp
      | 1 -> Sse_scalar_fp
      | 2 -> Sse_packed_fp
      | _ -> Avx_fp)
  | f -> f

let fp_unit ctx flavor =
  match resolve_flavor ctx flavor with
  | No_fp -> int_unit ctx
  | X87_fp -> x87_unit ctx
  | Sse_scalar_fp -> sse_scalar_unit ctx
  | Sse_packed_fp -> sse_packed_unit ctx
  | Avx_fp -> avx_unit ctx
  | Avx_fma_fp -> fma_unit ctx
  | Mixed_fp -> assert false

(* Long-latency units: shadow-casters for the EBS model. *)
let long_unit ctx flavor =
  match resolve_flavor ctx flavor with
  | No_fp ->
      [
        i Mnemonic.MOV [ rax; rnd_imm ctx ];
        i Mnemonic.MOV [ r11; imm (3 + Prng.int ctx.prng 97) ];
        i Mnemonic.DIV [ r11 ];
      ]
  | X87_fp ->
      let m = rnd_mem ctx in
      if Prng.bool ctx.prng 0.3 then
        [ i Mnemonic.FLD [ m ]; i Mnemonic.FSIN []; i Mnemonic.FSTP [ m ] ]
      else
        [ i Mnemonic.FLD [ m ]; i Mnemonic.FSQRT []; i Mnemonic.FSTP [ m ] ]
  | Sse_scalar_fp ->
      if Prng.bool ctx.prng 0.5 then
        [ i Mnemonic.DIVSD [ rnd_xmm ctx; rnd_xmm ctx ] ]
      else [ i Mnemonic.SQRTSD [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | Sse_packed_fp ->
      if Prng.bool ctx.prng 0.5 then
        [ i Mnemonic.DIVPS [ rnd_xmm ctx; rnd_xmm ctx ] ]
      else [ i Mnemonic.SQRTPS [ rnd_xmm ctx; rnd_xmm ctx ] ]
  | Avx_fp | Avx_fma_fp ->
      if Prng.bool ctx.prng 0.5 then
        [ i Mnemonic.VDIVPS [ rnd_ymm ctx; rnd_ymm ctx; rnd_ymm ctx ] ]
      else [ i Mnemonic.VSQRTPS [ rnd_ymm ctx; rnd_ymm ctx ] ]
  | Mixed_fp -> assert false

let unit ctx p =
  let roll = Prng.float ctx.prng in
  if roll < p.long_rate then long_unit ctx p.fp
  else if roll < p.long_rate +. p.fp_rate then fp_unit ctx p.fp
  else if roll < p.long_rate +. p.fp_rate +. p.simd_int_rate then
    simd_int_unit ctx
  else if roll < p.long_rate +. p.fp_rate +. p.simd_int_rate +. p.mem_rate
  then mem_unit ctx
  else int_unit ctx

let filler ctx params ~len =
  let rec emit count acc =
    if count >= len then List.concat (List.rev acc)
    else
      let u = unit ctx params in
      emit (count + List.length u) (u :: acc)
  in
  emit 0 []

let counted_loop ctx ~reg ~times body =
  let top = fresh ctx "loop" in
  ((i Mnemonic.MOV [ R (Operand.Gpr reg); imm (max 1 times) ] :: label top
    :: body)
  @ [ i Mnemonic.DEC [ R (Operand.Gpr reg) ]; i Mnemonic.JNZ [ L top ] ])

let data_init ctx ~words =
  let top = fresh ctx "init" in
  [
    i Mnemonic.MOV [ rcx; imm (max 1 words) ];
    label top;
    i Mnemonic.MOV
      [ mem Operand.RBP ~index:Operand.RCX ~scale:8 ~disp:(-8); rcx ];
    i Mnemonic.DEC [ rcx ];
    i Mnemonic.JNZ [ L top ];
  ]

type func_params = {
  blocks : int;
  mean_len : int;
  len_jitter : int;
  iterations : int;
  call_rate : float;
  indirect_calls : bool;
  profile : profile_params;
}

let helper_name name k = Printf.sprintf "%s_helper_%d" name k

let synthetic_funcs ctx ~name ~helpers (p : func_params) =
  let helper_funcs =
    List.init helpers (fun k ->
        func (helper_name name k)
          (filler ctx p.profile ~len:(3 + Prng.int ctx.prng 6)
          @ [ i Mnemonic.RET_NEAR [] ]))
  in
  let block_labels =
    Array.init (p.blocks + 1) (fun k -> fresh ctx (Printf.sprintf "%s_b%d" name k))
  in
  let block k =
    let len =
      max 1 (p.mean_len - p.len_jitter + Prng.int ctx.prng (2 * p.len_jitter + 1))
    in
    let body = filler ctx p.profile ~len in
    let call =
      if helpers > 0 && Prng.bool ctx.prng p.call_rate then begin
        let target = helper_name name (Prng.int ctx.prng helpers) in
        if p.indirect_calls then
          [ i Mnemonic.MOV [ r11; A target ]; i Mnemonic.CALL_NEAR [ r11 ] ]
        else [ i Mnemonic.CALL_NEAR [ L target ] ]
      end
      else []
    in
    let skip =
      if k < p.blocks - 1 then begin
        (* Key the branch on an iteration-counter bit: data-dependent but
           terminating (forward skip only). *)
        let mask = 1 lsl Prng.int ctx.prng 4 in
        let target = block_labels.(min (k + 2) p.blocks) in
        [ i Mnemonic.TEST [ r10; imm mask ]; i Mnemonic.JZ [ L target ] ]
      end
      else []
    in
    (label block_labels.(k) :: body) @ call @ skip
  in
  let chain = List.concat (List.init p.blocks block) @ [ label block_labels.(p.blocks) ] in
  let body =
    (i Mnemonic.XOR [ r10; r10 ]
    :: counted_loop ctx ~reg:Operand.R12 ~times:p.iterations
         ((i Mnemonic.INC [ r10 ] :: chain)))
    @ [ i Mnemonic.RET_NEAR [] ]
  in
  func name body :: helper_funcs

let estimated_instructions (p : func_params) =
  let per_block =
    float_of_int (p.mean_len + 2) +. (p.call_rate *. 10.0)
  in
  int_of_float
    (float_of_int p.iterations *. float_of_int p.blocks *. per_block *. 0.8)

let user_workload ?(description = "") ?runtime_class ~name funcs =
  let entry_target =
    match funcs with
    | f :: _ -> f.Asm.name
    | [] -> invalid_arg "Codegen.user_workload: no functions"
  in
  let start =
    func "_start"
      [
        i Mnemonic.MOV [ rbp; imm Layout.user_data_base ];
        i Mnemonic.CALL_NEAR [ L entry_target ];
        i Mnemonic.RET_NEAR [];
      ]
  in
  let img =
    Asm.assemble ~name ~base:Layout.user_code_base ~ring:Ring.User
      (start :: funcs)
  in
  Hbbp_core.Workload.of_user_image ~description ?runtime_class img
    ~entry_symbol:"_start"
