(** Hydro-post — a large-scale scientific post-processing kernel
    (Table 1's worst instrumentation case, 76.6x): wide-vector FMA-heavy
    number crunching, the kind of code emulation slows the most. *)

val workload : unit -> Hbbp_core.Workload.t
