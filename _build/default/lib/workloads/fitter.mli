(** Fitter — a compact, CPU-intensive, vectorisable track-fitting kernel
    (paper section VIII.C): sparse 3D position measurements fitted into
    object-movement tracks, in four build variants.

    [Avx_noinline] reproduces the paper's compiler-regression case study:
    the AVX build where inlining silently broke, multiplying CALL counts
    ~60x and wrecking the time per track, while the number of vector
    instructions stayed unsuspicious. *)

type variant = X87 | Sse | Avx | Avx_noinline

val variant_name : variant -> string
val all_variants : variant list
val workload : variant -> Hbbp_core.Workload.t

(** Tracks fitted per run (for time-per-track numbers). *)
val tracks : int
