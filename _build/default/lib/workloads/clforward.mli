(** CLForward — an online HPC code with a vectorization bug
    (paper section VIII.E and Table 8): the [Before] build burns a large
    number of {e scalar} AVX instructions inside an [#omp simd]
    reduction; the [After] build, made compiler-friendly, replaces them
    with a much smaller number of {e packed} instructions and runs
    faster. *)

type variant = Before | After

val variant_name : variant -> string
val workload : variant -> Hbbp_core.Workload.t
