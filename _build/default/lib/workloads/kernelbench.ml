open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu

let syscall_number = Kernel_abi.first_module_syscall
let user_function = "hello_u"
let kernel_function = "hello_k"

(* Prime counting below [limit] with divisibility tested by repeated
   addition (no DIV — the mnemonic set matches Table 7: ADD, CDQE, CMP,
   IMUL, JLE, JNLE, JNZ, JZ, MOV, MOVSXD, SUB, TEST).  Candidate in RSI,
   trial divisor in RDI, accumulator in RDX, prime count in R8. *)
let prime_search ~prefix ~limit =
  let l s = prefix ^ s in
  [
    i Mnemonic.MOV [ rsi; imm 3 ];
    i Mnemonic.MOV [ r8; imm 0 ];
    label (l "cand");
    i Mnemonic.TEST [ rsi; imm 1 ];
    i Mnemonic.JZ [ L (l "next") ];  (* even: skip *)
    i Mnemonic.MOV [ rdi; imm 2 ];
    label (l "div");
    i Mnemonic.MOV [ rax; rdi ];
    i Mnemonic.CDQE [];
    i Mnemonic.IMUL [ rax; rdi ];
    i Mnemonic.CMP [ rax; rsi ];
    i Mnemonic.JNLE [ L (l "prime") ];  (* d*d > n: no divisor found *)
    i Mnemonic.MOV [ rdx; rdi ];
    i Mnemonic.MOVSXD [ rdx; rdx ];
    label (l "acc");
    (* m += d while n > m; on exit ZF says whether d divides n exactly. *)
    i Mnemonic.ADD [ rdx; rdi ];
    i Mnemonic.CMP [ rsi; rdx ];
    i Mnemonic.JNLE [ L (l "acc") ];
    i Mnemonic.SUB [ rdx; rsi ];
    i Mnemonic.JZ [ L (l "next") ];  (* exact multiple: not prime *)
    i Mnemonic.ADD [ rdi; imm 1 ];
    i Mnemonic.JNZ [ L (l "div") ];  (* rdi > 0: always taken *)
    label (l "prime");
    i Mnemonic.ADD [ r8; imm 1 ];
    label (l "next");
    i Mnemonic.ADD [ rsi; imm 2 ];
    i Mnemonic.CMP [ rsi; imm limit ];
    i Mnemonic.JLE [ L (l "cand") ];
    i Mnemonic.RET_NEAR [];
  ]

let limit = 60
let prime_limit = limit

let user_image () =
  let hello_u = func user_function (prime_search ~prefix:"hu_" ~limit) in
  (* Filler between kernel calls: "calls to kernel code are separated in
     time to simulate real behavior". *)
  let spacer =
    func "spacer"
      [
        i Mnemonic.MOV [ rcx; imm 60 ];
        label "sp_loop";
        i Mnemonic.MOV [ rbx; mem Operand.RBP ~index:Operand.RCX ~scale:8 ];
        i Mnemonic.ADD [ rbx; rcx ];
        i Mnemonic.MOV [ mem Operand.RBP ~index:Operand.RCX ~scale:8; rbx ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "sp_loop" ];
        i Mnemonic.RET_NEAR [];
      ]
  in
  let main =
    func "main"
      [
        i Mnemonic.MOV [ r15; imm 2000 ];  (* rounds *)
        label "m_round";
        i Mnemonic.CALL_NEAR [ L user_function ];
        i Mnemonic.CALL_NEAR [ L "spacer" ];
        i Mnemonic.MOV [ rax; imm syscall_number ];
        i Mnemonic.SYSCALL [];
        i Mnemonic.CALL_NEAR [ L "spacer" ];
        i Mnemonic.DEC [ r15 ];
        i Mnemonic.JNZ [ L "m_round" ];
        i Mnemonic.RET_NEAR [];
      ]
  in
  let start =
    func "_start"
      [
        i Mnemonic.MOV [ rbp; imm Layout.user_data_base ];
        i Mnemonic.CALL_NEAR [ L "main" ];
        i Mnemonic.RET_NEAR [];
      ]
  in
  Asm.assemble ~name:"hello" ~base:Layout.user_code_base ~ring:Ring.User
    [ start; main; hello_u; spacer ]

let module_image () =
  let hello_k = func kernel_function (prime_search ~prefix:"hk_" ~limit) in
  Asm.assemble ~name:"hello.ko" ~base:Layout.module_code_base
    ~ring:Ring.Kernel [ hello_k ]

let workload () =
  let user = user_image () in
  let hello_ko = module_image () in
  let entry_addr =
    match Image.find_symbol hello_ko kernel_function with
    | Some s -> s.Symbol.addr
    | None -> assert false
  in
  let kernel =
    Kernel.build
      ~external_services:
        [ { Kernel.number = syscall_number; name = "hello"; entry_addr } ]
      ()
  in
  let base =
    Hbbp_core.Workload.of_user_image
      ~description:"prime search in user and kernel space"
      ~runtime_class:Hbbp_collector.Period.Seconds user ~entry_symbol:"_start"
  in
  Hbbp_core.Workload.with_kernel base ~disk:kernel.Kernel.disk
    ~live:kernel.Kernel.live ~modules:[ hello_ko ]
