(** The SPEC CPU2006-like benchmark suite.

    Each benchmark is a synthetic program whose characteristics (block
    length distribution, FP flavour, long-latency density, call
    structure) follow what the paper reports or implies about the real
    benchmark: povray is scalar-SSE- and sqrt-heavy and the worst case
    for instrumentation; omnetpp is short-block OO code; hmmer's divides
    shadow EBS samples; lbm has long blocks directly after long-latency
    instructions (the one case where HBBP loses to LBR); gamess leans on
    x87 in tight loops. *)

val names : string list

(** [find name] builds the benchmark.
    @raise Invalid_argument for unknown names. *)
val find : string -> Hbbp_core.Workload.t

(** All benchmarks, in [names] order. *)
val all : unit -> Hbbp_core.Workload.t list

(** The benchmark on which the instrumentation tool miscounts (paper
    footnote 2) — profile it with
    [{ sde with bug_mnemonic = Some bug_mnemonic }] to reproduce. *)
val buggy_benchmark : string

val bug_mnemonic : Hbbp_isa.Mnemonic.t
