open Codegen

let workload () =
  let ctx = create_ctx ~seed:0x7E5740L in
  let profile =
    {
      fp = Mixed_fp;
      fp_rate = 0.25;
      mem_rate = 0.25;
      long_rate = 0.02;
      simd_int_rate = 0.0;
    }
  in
  let params =
    {
      blocks = 60;
      mean_len = 3;
      len_jitter = 1;
      iterations = 1;
      call_rate = 0.6;
      indirect_calls = true;  (* virtual dispatch *)
      profile;
    }
  in
  let per_iteration = max 1 (estimated_instructions params) in
  let iterations = max 1 (5_000_000 / per_iteration) in
  let funcs =
    synthetic_funcs ctx ~name:"geant4_stepping" ~helpers:14
      { params with iterations }
  in
  user_workload
    ~description:"Geant4-like particle transport (short OO methods)"
    ~runtime_class:Hbbp_collector.Period.Seconds ~name:"test40" funcs
