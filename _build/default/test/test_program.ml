(* Tests for the program layer: assembler, disassembler, basic-block
   maps, CFG and processes. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_program =
  [
    func "main"
      [
        i Mnemonic.MOV [ rcx; imm 10 ];
        label "loop";
        i Mnemonic.ADD [ rax; imm 1 ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "loop" ];
        i Mnemonic.CALL_NEAR [ L "leaf" ];
        i Mnemonic.RET_NEAR [];
      ];
    func "leaf" [ i Mnemonic.XOR [ rax; rax ]; i Mnemonic.RET_NEAR [] ];
  ]

let assemble_small () =
  assemble ~name:"small" ~base:0x1000 ~ring:Ring.User small_program

(* ------------------------------------------------------------------ *)
(* Assembler                                                           *)

let test_assemble_symbols () =
  let img = assemble_small () in
  checki "two symbols" 2 (List.length img.Image.symbols);
  let main = Option.get (Image.find_symbol img "main") in
  checki "main at base" 0x1000 main.Symbol.addr;
  let leaf = Option.get (Image.find_symbol img "leaf") in
  checkb "leaf after main" true (leaf.Symbol.addr > main.Symbol.addr);
  checki "symbols cover image" (Image.size img)
    (List.fold_left (fun acc (s : Symbol.t) -> acc + s.size) 0 img.Image.symbols)

let test_duplicate_label () =
  let bad = [ func "f" [ label "x"; label "x"; i Mnemonic.RET_NEAR [] ] ] in
  match assemble ~name:"bad" ~base:0 ~ring:Ring.User bad with
  | exception Asm_error _ -> ()
  | _ -> Alcotest.fail "expected Asm_error"

let test_unresolved_label () =
  let bad = [ func "f" [ i Mnemonic.JMP [ L "nowhere" ] ] ] in
  match assemble ~name:"bad" ~base:0 ~ring:Ring.User bad with
  | exception Asm_error _ -> ()
  | _ -> Alcotest.fail "expected Asm_error"

let test_label_addresses () =
  let addrs =
    label_addresses ~name:"small" ~base:0x1000 ~ring:Ring.User small_program
  in
  checkb "has loop label" true (List.mem_assoc "loop" addrs);
  checkb "has function labels" true (List.mem_assoc "leaf" addrs)

(* ------------------------------------------------------------------ *)
(* Disassembler                                                        *)

let test_disasm_roundtrip () =
  let img = assemble_small () in
  match Disasm.image img with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Disasm.pp_error e)
  | Ok decoded ->
      checki "eight instructions" 8 (Array.length decoded);
      (* Addresses are contiguous. *)
      Array.iteri
        (fun k (d : Disasm.decoded) ->
          if k > 0 then
            checki "contiguous"
              (decoded.(k - 1).Disasm.addr + decoded.(k - 1).Disasm.len)
              d.Disasm.addr)
        decoded

let test_branch_target_resolution () =
  let img = assemble_small () in
  let decoded = Result.get_ok (Disasm.image img) in
  let jnz =
    Array.to_list decoded
    |> List.find (fun (d : Disasm.decoded) ->
           Mnemonic.equal d.instr.Instruction.mnemonic Mnemonic.JNZ)
  in
  let target = Option.get (Disasm.branch_target jnz) in
  let addrs =
    label_addresses ~name:"small" ~base:0x1000 ~ring:Ring.User small_program
  in
  checki "jnz targets loop label" (List.assoc "loop" addrs) target

(* ------------------------------------------------------------------ *)
(* Basic-block map                                                     *)

let test_bb_map_partition () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  let decoded = Result.get_ok (Disasm.image img) in
  checki "instruction conservation" (Array.length decoded)
    (Bb_map.instruction_count map);
  (* Every instruction address belongs to exactly one block. *)
  Array.iter
    (fun (d : Disasm.decoded) ->
      match Bb_map.block_at map d.addr with
      | None -> Alcotest.fail "instruction outside any block"
      | Some b ->
          checkb "index found" true
            (Option.is_some (Basic_block.instr_index b d.addr)))
    decoded;
  (* Blocks are disjoint and sorted. *)
  let blocks = Bb_map.blocks map in
  Array.iteri
    (fun k b ->
      if k > 0 then
        checkb "sorted disjoint" true
          (Basic_block.end_addr blocks.(k - 1) <= b.Basic_block.addr))
    blocks

let test_bb_map_leaders () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  (* main: [mov rcx] [add/dec/jnz] [call] [ret]; leaf: [xor/ret] -> but
     xor;ret has a RET terminator so leaf is one block of 2. *)
  checki "block count" 5 (Bb_map.block_count map);
  let addrs =
    label_addresses ~name:"small" ~base:0x1000 ~ring:Ring.User small_program
  in
  let loop_block =
    Option.get (Bb_map.block_starting_at map (List.assoc "loop" addrs))
  in
  checki "loop block has 3 instrs" 3 (Basic_block.length loop_block);
  match loop_block.Basic_block.term with
  | Basic_block.Term_cond t -> checki "backedge" (List.assoc "loop" addrs) t
  | _ -> Alcotest.fail "expected conditional terminator"

let test_next_block_chain () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  let first = Bb_map.block map 0 in
  let second = Option.get (Bb_map.next_block map first) in
  checki "chain address" (Basic_block.end_addr first) second.Basic_block.addr;
  let last = Bb_map.block map (Bb_map.block_count map - 1) in
  checkb "last has no next" true (Option.is_none (Bb_map.next_block map last))

(* ------------------------------------------------------------------ *)
(* CFG                                                                 *)

let test_dominators () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  let cfg = Cfg.of_bb_map map in
  let idom = Cfg.immediate_dominators cfg ~entry:0 in
  checki "entry dominates itself" 0 idom.(0);
  (* Every reachable block's idom chain terminates at the entry. *)
  Array.iteri
    (fun b d ->
      if d >= 0 then checkb "entry dominates all" true (Cfg.dominates ~idom 0 b))
    idom

let test_natural_loops () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  let cfg = Cfg.of_bb_map map in
  let loops = Cfg.natural_loops cfg ~entry:0 in
  checki "one loop" 1 (List.length loops);
  let l = List.hd loops in
  let addrs =
    label_addresses ~name:"small" ~base:0x1000 ~ring:Ring.User small_program
  in
  let loop_block =
    Option.get (Bb_map.block_starting_at map (List.assoc "loop" addrs))
  in
  checki "header is the loop label block" loop_block.Basic_block.id
    l.Cfg.header;
  checkb "header in body" true (List.mem l.Cfg.header l.Cfg.body);
  checkb "self-latch" true (List.mem l.Cfg.header l.Cfg.latches);
  checki "tight loop body" 1 (List.length l.Cfg.body)

let test_nested_loops () =
  (* Two-level nest: outer and inner both detected; inner body is a
     subset of outer body. *)
  let funcs =
    [
      func "main"
        [
          i Mnemonic.MOV [ rbx; imm 3 ];
          label "outer";
          i Mnemonic.MOV [ rcx; imm 5 ];
          label "inner";
          i Mnemonic.ADD [ rax; imm 1 ];
          i Mnemonic.DEC [ rcx ];
          i Mnemonic.JNZ [ L "inner" ];
          i Mnemonic.DEC [ rbx ];
          i Mnemonic.JNZ [ L "outer" ];
          i Mnemonic.RET_NEAR [];
        ];
    ]
  in
  let img = assemble ~name:"nest" ~base:0x1000 ~ring:Ring.User funcs in
  let map = Bb_map.of_image_exn img in
  let cfg = Cfg.of_bb_map map in
  let loops = Cfg.natural_loops cfg ~entry:0 in
  checki "two loops" 2 (List.length loops);
  let outer =
    List.find (fun l -> List.length l.Cfg.body > 1) loops
  and inner = List.find (fun l -> List.length l.Cfg.body = 1) loops in
  checkb "inner inside outer" true
    (List.for_all (fun b -> List.mem b outer.Cfg.body) inner.Cfg.body)

let test_cfg_edges () =
  let img = assemble_small () in
  let map = Bb_map.of_image_exn img in
  let cfg = Cfg.of_bb_map map in
  (* Loop block: taken edge to itself, fallthrough to the call block. *)
  let addrs =
    label_addresses ~name:"small" ~base:0x1000 ~ring:Ring.User small_program
  in
  let loop_block =
    Option.get (Bb_map.block_starting_at map (List.assoc "loop" addrs))
  in
  let succs = Cfg.successors cfg loop_block.Basic_block.id in
  checki "two successors" 2 (List.length succs);
  checkb "self edge" true
    (List.exists (fun (s, k) -> s = loop_block.Basic_block.id && k = Cfg.Taken) succs);
  let reach = Cfg.reachable_from cfg 0 in
  checkb "all blocks reachable from entry" true (Array.for_all Fun.id reach)

(* ------------------------------------------------------------------ *)
(* Process                                                             *)

let test_process_overlap () =
  let a = assemble ~name:"a" ~base:0x1000 ~ring:Ring.User small_program in
  let b = assemble ~name:"b" ~base:0x1004 ~ring:Ring.User small_program in
  match Process.create [ a; b ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected overlap rejection"

let test_process_resolve () =
  let a = assemble ~name:"a" ~base:0x1000 ~ring:Ring.User small_program in
  let b = assemble ~name:"b" ~base:0x10000 ~ring:Ring.Kernel small_program in
  let p = Process.create [ a; b ] in
  (match Process.resolve p 0x1000 with
  | Some (img, Some sym) ->
      Alcotest.(check string) "image" "a" img.Image.name;
      Alcotest.(check string) "symbol" "main" sym.Symbol.name
  | _ -> Alcotest.fail "resolution failed");
  checki "user images" 1 (List.length (Process.user_images p));
  checki "kernel images" 1 (List.length (Process.kernel_images p));
  checkb "unmapped address" true (Option.is_none (Process.resolve p 0x500))

let test_image_patch () =
  let a = assemble ~name:"a" ~base:0x1000 ~ring:Ring.User small_program in
  let patched_code = Bytes.copy a.Image.code in
  Bytes.set_uint8 patched_code 0 0xAB;
  let live = Image.make ~name:"a" ~base:0x1000 ~code:patched_code
      ~symbols:a.Image.symbols ~ring:Ring.User in
  let patched = Image.patch_code a ~from_image:live in
  checki "patched byte" 0xAB (Bytes.get_uint8 patched.Image.code 0);
  (* Mismatched layout is rejected. *)
  let other = assemble ~name:"a" ~base:0x2000 ~ring:Ring.User small_program in
  match Image.patch_code a ~from_image:other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected layout mismatch rejection"

(* ------------------------------------------------------------------ *)
(* Property: random synthetic programs partition cleanly.              *)

let prop_bb_partition =
  QCheck2.Test.make ~name:"bb map partitions any synthetic program" ~count:30
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let ctx = Hbbp_workloads.Codegen.create_ctx ~seed:(Int64.of_int seed) in
      let funcs =
        Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:"p" ~helpers:2
          {
            Hbbp_workloads.Codegen.blocks = 10;
            mean_len = 4;
            len_jitter = 2;
            iterations = 1;
            call_rate = 0.3;
            indirect_calls = false;
            profile = Hbbp_workloads.Codegen.int_only;
          }
      in
      let img = assemble ~name:"p" ~base:0x400000 ~ring:Ring.User funcs in
      let map = Bb_map.of_image_exn img in
      let decoded = Result.get_ok (Disasm.image img) in
      Bb_map.instruction_count map = Array.length decoded
      && Array.for_all
           (fun (d : Disasm.decoded) ->
             Option.is_some (Bb_map.block_at map d.addr))
           decoded)

(* The assembler and disassembler agree on every synthetic program: the
   decoded mnemonic stream equals the emitted one. *)
let prop_asm_disasm_agree =
  QCheck2.Test.make ~name:"asm/disasm mnemonic streams agree" ~count:20
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let ctx = Hbbp_workloads.Codegen.create_ctx ~seed:(Int64.of_int seed) in
      let funcs =
        Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:"p" ~helpers:1
          {
            Hbbp_workloads.Codegen.blocks = 6;
            mean_len = 5;
            len_jitter = 3;
            iterations = 1;
            call_rate = 0.2;
            indirect_calls = false;
            profile =
              { Hbbp_workloads.Codegen.fp = Hbbp_workloads.Codegen.Mixed_fp;
                fp_rate = 0.3; mem_rate = 0.2; long_rate = 0.05;
                simd_int_rate = 0.1 };
          }
      in
      let emitted =
        List.concat_map
          (fun (f : Asm.func) ->
            List.filter_map
              (function Asm.Ins (m, _) -> Some m | Asm.Label _ -> None)
              f.Asm.body)
          funcs
      in
      let img = assemble ~name:"p" ~base:0x400000 ~ring:Ring.User funcs in
      let decoded = Result.get_ok (Disasm.image img) in
      let got =
        Array.to_list decoded
        |> List.map (fun (d : Disasm.decoded) -> d.instr.Instruction.mnemonic)
      in
      List.length emitted = List.length got
      && List.for_all2 Mnemonic.equal emitted got)

(* CFG edges reference valid block ids and mirror into predecessors. *)
let prop_cfg_well_formed =
  QCheck2.Test.make ~name:"cfg edges well-formed" ~count:20
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let ctx = Hbbp_workloads.Codegen.create_ctx ~seed:(Int64.of_int seed) in
      let funcs =
        Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:"p" ~helpers:2
          {
            Hbbp_workloads.Codegen.blocks = 8;
            mean_len = 4;
            len_jitter = 2;
            iterations = 1;
            call_rate = 0.3;
            indirect_calls = false;
            profile = Hbbp_workloads.Codegen.int_only;
          }
      in
      let img = assemble ~name:"p" ~base:0x400000 ~ring:Ring.User funcs in
      let map = Bb_map.of_image_exn img in
      let cfg = Cfg.of_bb_map map in
      let n = Bb_map.block_count map in
      let ok = ref true in
      for b = 0 to n - 1 do
        List.iter
          (fun (s, _) ->
            if s < 0 || s >= n then ok := false
            else if not (List.mem b (Cfg.predecessors cfg s)) then ok := false)
          (Cfg.successors cfg b)
      done;
      !ok)

let () =
  Alcotest.run "program"
    [
      ( "asm",
        [
          Alcotest.test_case "symbols" `Quick test_assemble_symbols;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "unresolved label" `Quick test_unresolved_label;
          Alcotest.test_case "label addresses" `Quick test_label_addresses;
        ] );
      ( "disasm",
        [
          Alcotest.test_case "roundtrip" `Quick test_disasm_roundtrip;
          Alcotest.test_case "branch targets" `Quick
            test_branch_target_resolution;
        ] );
      ( "bb_map",
        [
          Alcotest.test_case "partition" `Quick test_bb_map_partition;
          Alcotest.test_case "leaders" `Quick test_bb_map_leaders;
          Alcotest.test_case "next chain" `Quick test_next_block_chain;
          QCheck_alcotest.to_alcotest prop_bb_partition;
          QCheck_alcotest.to_alcotest prop_asm_disasm_agree;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "edges" `Quick test_cfg_edges;
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "natural loops" `Quick test_natural_loops;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          QCheck_alcotest.to_alcotest prop_cfg_well_formed;
        ] );
      ( "process",
        [
          Alcotest.test_case "overlap" `Quick test_process_overlap;
          Alcotest.test_case "resolve" `Quick test_process_resolve;
          Alcotest.test_case "patch" `Quick test_image_patch;
        ] );
    ]
