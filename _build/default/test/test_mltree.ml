(* Tests for the CART classification-tree library. *)

open Hbbp_mltree

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_gini () =
  checkf "pure node" 0.0 (Cart.gini_impurity [| 10.0; 0.0 |]);
  checkf "balanced binary" 0.5 (Cart.gini_impurity [| 5.0; 5.0 |]);
  checkf "empty" 0.0 (Cart.gini_impurity [| 0.0; 0.0 |]);
  checkf "three-way uniform" (1.0 -. (3.0 /. 9.0))
    (Cart.gini_impurity [| 1.0; 1.0; 1.0 |])

let test_dataset_validation () =
  let ok () =
    Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a"; "b" |]
      ~features:[| [| 1.0 |]; [| 2.0 |] |]
      ~labels:[| 0; 1 |] ~weights:[| 1.0; 1.0 |]
  in
  ignore (ok ());
  (match
     Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a" |]
       ~features:[| [| 1.0 |] |] ~labels:[| 5 |] ~weights:[| 1.0 |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "label out of range accepted");
  (match
     Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a" |]
       ~features:[| [| 1.0; 2.0 |] |] ~labels:[| 0 |] ~weights:[| 1.0 |]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged features accepted");
  match
    Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a" |]
      ~features:[| [| 1.0 |] |] ~labels:[| 0 |] ~weights:[| -1.0 |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative weight accepted"

(* A linearly separable dataset on feature 1 with threshold 10. *)
let separable n =
  let features =
    Array.init n (fun k -> [| float_of_int (k mod 3); float_of_int k |])
  in
  let labels = Array.map (fun f -> if f.(1) <= 10.0 then 0 else 1) features in
  Dataset.create ~feature_names:[| "noise"; "value" |]
    ~class_names:[| "low"; "high" |] ~features ~labels
    ~weights:(Array.make n 1.0)

let test_separable_perfect () =
  let d = separable 100 in
  let params = { Cart.default_params with min_samples_leaf = 1 } in
  let tree = Cart.train ~params d in
  Array.iteri
    (fun k f -> checki "prediction" d.Dataset.labels.(k) (Cart.predict tree f))
    d.Dataset.features;
  (match Cart.root_split tree with
  | Some (feature, threshold) ->
      checki "split on the informative feature" 1 feature;
      checkb "threshold between 10 and 11" true
        (threshold > 10.0 && threshold < 11.0)
  | None -> Alcotest.fail "expected a split");
  let imp = Cart.feature_importances tree ~n_features:2 in
  checkb "value feature dominates" true (imp.(1) > 0.9)

let test_stump_on_pure_data () =
  let d =
    Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a"; "b" |]
      ~features:(Array.init 20 (fun k -> [| float_of_int k |]))
      ~labels:(Array.make 20 0)
      ~weights:(Array.make 20 1.0)
  in
  let tree = Cart.train d in
  checki "no split needed" 1 (Cart.leaf_count tree);
  checki "depth 0" 0 (Cart.depth tree)

let test_max_depth_respected () =
  let d = separable 200 in
  let params = { Cart.default_params with max_depth = 2; min_samples_leaf = 1 } in
  let tree = Cart.train ~params d in
  checkb "depth bounded" true (Cart.depth tree <= 2)

let test_weights_matter () =
  (* Two conflicting points; the heavier one wins the leaf label. *)
  let d =
    Dataset.create ~feature_names:[| "x" |] ~class_names:[| "a"; "b" |]
      ~features:[| [| 1.0 |]; [| 1.0 |] |]
      ~labels:[| 0; 1 |]
      ~weights:[| 1.0; 10.0 |]
  in
  let tree = Cart.train d in
  checki "heavy class wins" 1 (Cart.predict tree [| 1.0 |])

let test_predict_proba () =
  let d = separable 100 in
  let tree = Cart.train d in
  let proba = Cart.predict_proba tree [| 0.0; 0.0 |] in
  checkf "probabilities sum to 1" 1.0 (Array.fold_left ( +. ) 0.0 proba)

let test_render () =
  let d = separable 100 in
  let tree = Cart.train d in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go k = k + m <= n && (String.equal (String.sub s k m) sub || go (k + 1)) in
    go 0
  in
  let text = Render.ascii d tree in
  checkb "mentions feature name" true (contains text "value");
  checkb "mentions class name" true (contains text "class:");
  let dot = Render.dot d tree in
  checkb "dot output well-formed" true (contains dot "digraph")

let prop_predictions_valid =
  QCheck2.Test.make ~name:"predictions are valid classes" ~count:50
    QCheck2.Gen.(int_range 2 200)
    (fun n ->
      let d = separable n in
      let tree = Cart.train d in
      Array.for_all
        (fun f ->
          let c = Cart.predict tree f in
          c >= 0 && c < 2)
        d.Dataset.features)

let () =
  Alcotest.run "mltree"
    [
      ( "cart",
        [
          Alcotest.test_case "gini" `Quick test_gini;
          Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
          Alcotest.test_case "separable data" `Quick test_separable_perfect;
          Alcotest.test_case "pure data stump" `Quick test_stump_on_pure_data;
          Alcotest.test_case "max depth" `Quick test_max_depth_respected;
          Alcotest.test_case "weights" `Quick test_weights_matter;
          Alcotest.test_case "predict proba" `Quick test_predict_proba;
          Alcotest.test_case "render" `Quick test_render;
          QCheck_alcotest.to_alcotest prop_predictions_valid;
        ] );
    ]
