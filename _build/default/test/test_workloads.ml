(* Tests for the workload suite: every program must assemble, run to
   completion within budget, and exhibit its designed characteristics. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_cpu
open Hbbp_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_workload (w : Workload.t) =
  let machine = Machine.create ~process:w.Workload.live_process () in
  let stats =
    Machine.run machine ~entry:w.Workload.entry
      ~max_instructions:200_000_000 ()
  in
  (machine, stats)

let test_spec_names_unique () =
  let names = Hbbp_workloads.Spec.names in
  checki "all distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  checkb "contains povray" true (List.mem "povray" names);
  checkb "contains omnetpp" true (List.mem "omnetpp" names);
  checkb "buggy benchmark is in the suite" true
    (List.mem Hbbp_workloads.Spec.buggy_benchmark names)

let test_spec_unknown () =
  match Hbbp_workloads.Spec.find "doom" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unknown-benchmark rejection"

let test_spec_runs () =
  (* A sample across characteristics; the full suite runs in bench. *)
  List.iter
    (fun name ->
      let w = Hbbp_workloads.Spec.find name in
      let _, stats = run_workload w in
      checkb (name ^ " retires ~millions") true
        (stats.Machine.retired > 1_000_000
        && stats.Machine.retired < 50_000_000))
    [ "bzip2"; "povray"; "lbm"; "omnetpp" ]

let test_spec_determinism () =
  let run () =
    let w = Hbbp_workloads.Spec.find "mcf" in
    let _, stats = run_workload w in
    stats.Machine.retired
  in
  checki "identical retirement counts" (run ()) (run ())

let test_test40_shape () =
  let w = Hbbp_workloads.Test40.workload () in
  let _, stats = run_workload w in
  checkb "short-block OO code is branchy" true
    (float_of_int stats.Machine.taken_branches
     /. float_of_int stats.Machine.retired
    > 0.10)

let test_hydro_is_vector_heavy () =
  let w = Hbbp_workloads.Hydro.workload () in
  let img = List.hd (Process.images w.Workload.live_process) in
  let decoded = Result.get_ok (Disasm.image img) in
  let vector =
    Array.fold_left
      (fun acc (d : Disasm.decoded) ->
        match Mnemonic.isa_set d.instr.Instruction.mnemonic with
        | Mnemonic.Avx | Mnemonic.Avx2 -> acc + 1
        | _ -> acc)
      0 decoded
  in
  checkb "mostly AVX statically" true
    (float_of_int vector /. float_of_int (Array.length decoded) > 0.3)

let test_fitter_variants () =
  List.iter
    (fun v ->
      let w = Hbbp_workloads.Fitter.workload v in
      let _, stats = run_workload w in
      checkb
        (Hbbp_workloads.Fitter.variant_name v ^ " runs")
        true
        (stats.Machine.retired > 500_000))
    Hbbp_workloads.Fitter.all_variants

let test_fitter_quirk_tuning () =
  (* The SSE build must contain a quirky branch; the AVX build none. *)
  let model = Pmu_model.default in
  let branches variant =
    let w = Hbbp_workloads.Fitter.workload variant in
    let img = List.hd (Process.images w.Workload.live_process) in
    let decoded = Result.get_ok (Disasm.image img) in
    Array.to_list decoded
    |> List.filter_map (fun (d : Disasm.decoded) ->
           if Instruction.is_branch d.instr then Some d.addr else None)
  in
  checkb "sse has a quirky branch" true
    (List.exists (Pmu_model.is_quirk_branch model)
       (branches Hbbp_workloads.Fitter.Sse));
  checkb "avx is quirk-free" true
    (List.for_all
       (fun a -> not (Pmu_model.is_quirk_branch model a))
       (branches Hbbp_workloads.Fitter.Avx))

let test_fitter_noinline_calls () =
  let calls variant =
    let w = Hbbp_workloads.Fitter.workload variant in
    let machine = Machine.create ~process:w.Workload.live_process () in
    let pmu =
      Pmu.create Pmu_model.default
        [ { Pmu.event = Pmu_event.Inst_retired_any; mode = Pmu.Counting } ]
    in
    Machine.add_observer machine (Pmu.observer pmu);
    let stats = Machine.run machine ~entry:w.Workload.entry () in
    stats.Machine.taken_branches
  in
  checkb "broken build takes far more branches (calls)" true
    (calls Hbbp_workloads.Fitter.Avx_noinline
    > 3 * calls Hbbp_workloads.Fitter.Avx)

let test_clforward_packing_shift () =
  let static_counts variant =
    let w = Hbbp_workloads.Clforward.workload variant in
    let img = List.hd (Process.images w.Workload.live_process) in
    let decoded = Result.get_ok (Disasm.image img) in
    let scalar = ref 0 and packed = ref 0 in
    Array.iter
      (fun (d : Disasm.decoded) ->
        match Mnemonic.packing d.instr.Instruction.mnemonic with
        | Mnemonic.Scalar_fp -> incr scalar
        | Mnemonic.Packed -> incr packed
        | Mnemonic.Not_vector -> ())
      decoded;
    (!scalar, !packed)
  in
  let s_before, _ = static_counts Hbbp_workloads.Clforward.Before in
  let s_after, p_after = static_counts Hbbp_workloads.Clforward.After in
  checkb "before is scalar" true (s_before > 0);
  checkb "after is packed" true (p_after > s_after)

let test_clforward_speedup () =
  let cycles variant =
    let w = Hbbp_workloads.Clforward.workload variant in
    let _, stats = run_workload w in
    stats.Machine.cycles
  in
  checkb "after is faster" true
    (cycles Hbbp_workloads.Clforward.After
    < cycles Hbbp_workloads.Clforward.Before)

let test_kernelbench_prime_count () =
  (* The user-space prime search leaves the prime count in R8; check it
     against an OCaml sieve for primes in (2, 600]. *)
  let w = Hbbp_workloads.Kernelbench.workload () in
  let machine = Machine.create ~process:w.Workload.live_process () in
  let img =
    Option.get (Process.find_image w.Workload.live_process "hello")
  in
  let entry =
    (Option.get (Image.find_symbol img Hbbp_workloads.Kernelbench.user_function))
      .Symbol.addr
  in
  let _ = Machine.run machine ~entry () in
  let expected =
    let is_prime n =
      let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
      n >= 2 && go 2
    in
    let c = ref 0 in
    for n = 3 to Hbbp_workloads.Kernelbench.prime_limit do
      if n mod 2 = 1 && is_prime n then incr c
    done;
    !c
  in
  Alcotest.(check int64)
    "prime count matches sieve" (Int64.of_int expected)
    (State.get_gpr (Machine.state machine) Operand.R8)

let test_kernelbench_rings () =
  let w = Hbbp_workloads.Kernelbench.workload () in
  let _, stats = run_workload w in
  checkb "substantial kernel share" true
    (stats.Machine.kernel_retired > stats.Machine.retired / 4);
  checkb "substantial user share" true
    (stats.Machine.retired - stats.Machine.kernel_retired
    > stats.Machine.retired / 4)

let test_kernelbench_disk_vs_live () =
  let w = Hbbp_workloads.Kernelbench.workload () in
  checkb "analysis and live processes differ" true
    (w.Workload.analysis_process != w.Workload.live_process);
  let disk =
    Option.get (Process.find_image w.Workload.analysis_process "vmlinux")
  in
  let live = Option.get (Process.find_image w.Workload.live_process "vmlinux") in
  checkb "kernel text differs" false (Bytes.equal disk.Image.code live.Image.code)

let test_training_corpus_size () =
  let n = Hbbp_workloads.Training_set.total_static_blocks () in
  checkb "about 1,100 blocks (paper)" true (n > 800 && n < 1500)

let test_training_runs () =
  List.iter
    (fun (w : Workload.t) ->
      let _, stats = run_workload w in
      checkb (w.Workload.name ^ " runs") true (stats.Machine.retired > 500_000))
    (Hbbp_workloads.Training_set.all ())

let () =
  Alcotest.run "workloads"
    [
      ( "spec",
        [
          Alcotest.test_case "names" `Quick test_spec_names_unique;
          Alcotest.test_case "unknown" `Quick test_spec_unknown;
          Alcotest.test_case "runs" `Slow test_spec_runs;
          Alcotest.test_case "determinism" `Slow test_spec_determinism;
        ] );
      ( "scientific",
        [
          Alcotest.test_case "test40 shape" `Slow test_test40_shape;
          Alcotest.test_case "hydro vector-heavy" `Quick
            test_hydro_is_vector_heavy;
        ] );
      ( "fitter",
        [
          Alcotest.test_case "variants run" `Slow test_fitter_variants;
          Alcotest.test_case "quirk tuning" `Quick test_fitter_quirk_tuning;
          Alcotest.test_case "noinline calls" `Slow test_fitter_noinline_calls;
        ] );
      ( "clforward",
        [
          Alcotest.test_case "packing shift" `Quick test_clforward_packing_shift;
          Alcotest.test_case "speedup" `Quick test_clforward_speedup;
        ] );
      ( "kernelbench",
        [
          Alcotest.test_case "prime count" `Quick test_kernelbench_prime_count;
          Alcotest.test_case "rings" `Slow test_kernelbench_rings;
          Alcotest.test_case "disk vs live" `Quick test_kernelbench_disk_vs_live;
        ] );
      ( "training",
        [
          Alcotest.test_case "corpus size" `Quick test_training_corpus_size;
          Alcotest.test_case "all run" `Slow test_training_runs;
        ] );
    ]
