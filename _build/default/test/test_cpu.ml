(* Tests for the CPU simulator: PRNG, memory, instruction semantics,
   the machine loop, LBR, the PMU sampling models and the kernel image. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checki64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)

let test_prng_determinism () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:1L in
  for _ = 1 to 100 do
    checki64 "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let p = Prng.create ~seed:99L in
  for _ = 1 to 1000 do
    let v = Prng.int p 7 in
    checkb "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float p in
    checkb "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_prng_choose () =
  let p = Prng.create ~seed:5L in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let k = Prng.choose p [| 1.0; 2.0; 1.0 |] in
    counts.(k) <- counts.(k) + 1
  done;
  checkb "middle weight dominates" true (counts.(1) > counts.(0));
  checkb "middle weight dominates 2" true (counts.(1) > counts.(2));
  Alcotest.check_raises "empty weights"
    (Invalid_argument "Prng.choose: empty or all-zero weights") (fun () ->
      ignore (Prng.choose p [||]))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

let test_memory_rw () =
  let m = Memory.create [ (0x1000, 256) ] in
  Memory.write_i64 m 0x1000 0x1122334455667788L;
  checki64 "i64 roundtrip" 0x1122334455667788L (Memory.read_i64 m 0x1000);
  checki "byte order (LE)" 0x88 (Memory.read_u8 m 0x1000);
  Memory.write_f64 m 0x1010 3.25;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.25 (Memory.read_f64 m 0x1010);
  Memory.write_f32 m 0x1020 1.5;
  Alcotest.(check (float 0.0)) "f32 roundtrip" 1.5 (Memory.read_f32 m 0x1020)

let test_memory_fault () =
  let m = Memory.create [ (0x1000, 16) ] in
  (match Memory.read_i64 m 0x100c with
  | exception Memory.Fault _ -> () (* crosses the end *)
  | _ -> Alcotest.fail "expected fault");
  checkb "mapped" true (Memory.is_mapped m 0x100f);
  checkb "unmapped" false (Memory.is_mapped m 0x1010)

let test_memory_overlap_rejected () =
  match Memory.create [ (0, 16); (8, 16) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected overlap rejection"

(* ------------------------------------------------------------------ *)
(* Machine + semantics: run small programs and inspect final state.    *)

let run_program ?kernel funcs =
  let img = assemble ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User funcs in
  let images = match kernel with None -> [ img ] | Some k -> [ img; k ] in
  let process = Process.create images in
  let machine = Machine.create ~process () in
  let entry = (Option.get (Image.find_symbol img "main")).Symbol.addr in
  let stats = Machine.run machine ~entry () in
  (Machine.state machine, stats)

let final_rax funcs =
  let st, _ = run_program funcs in
  State.get_gpr st Operand.RAX

let test_arith () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 10 ];
            i Mnemonic.ADD [ rax; imm 32 ];
            i Mnemonic.SUB [ rax; imm 2 ];
            i Mnemonic.IMUL [ rax; rax ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "(10+32-2)^2" 1600L v

let test_div () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 100 ];
            i Mnemonic.MOV [ rbx; imm 7 ];
            i Mnemonic.DIV [ rbx ];
            (* quotient 14 in rax, remainder 2 in rdx *)
            i Mnemonic.ADD [ rax; rdx ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "100/7 -> 14+2" 16L v

let test_loop_and_flags () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.XOR [ rax; rax ];
            i Mnemonic.MOV [ rcx; imm 5 ];
            label "l";
            i Mnemonic.ADD [ rax; rcx ];
            i Mnemonic.DEC [ rcx ];
            i Mnemonic.JNZ [ L "l" ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "sum 5..1" 15L v

let test_signed_conditions () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm (-5) ];
            i Mnemonic.CMP [ rax; imm 3 ];
            i Mnemonic.JL [ L "neg" ];
            i Mnemonic.MOV [ rax; imm 0 ];
            i Mnemonic.RET_NEAR [];
            label "neg";
            i Mnemonic.MOV [ rax; imm 1 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "-5 < 3 signed" 1L v

let test_stack_and_calls () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 5 ];
            i Mnemonic.PUSH [ rax ];
            i Mnemonic.CALL_NEAR [ L "double" ];
            i Mnemonic.POP [ rbx ];
            i Mnemonic.ADD [ rax; rbx ];
            i Mnemonic.RET_NEAR [];
          ];
        func "double" [ i Mnemonic.ADD [ rax; rax ]; i Mnemonic.RET_NEAR [] ];
      ]
  in
  checki64 "double(5) + pushed 5" 15L v

let test_indirect_call () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ r11; A "target" ];
            i Mnemonic.CALL_NEAR [ r11 ];
            i Mnemonic.RET_NEAR [];
          ];
        func "target" [ i Mnemonic.MOV [ rax; imm 77 ]; i Mnemonic.RET_NEAR [] ];
      ]
  in
  checki64 "indirect call" 77L v

let test_memory_ops () =
  let v =
    final_rax
      [
        func "main"
          [
            i Mnemonic.MOV [ rbp; imm Layout.user_data_base ];
            i Mnemonic.MOV [ rbx; imm 42 ];
            i Mnemonic.MOV [ mem Operand.RBP ~disp:16; rbx ];
            i Mnemonic.MOV [ rax; mem Operand.RBP ~disp:16 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "store/load" 42L v

let test_fp_scalar () =
  let st, _ =
    run_program
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 9 ];
            i Mnemonic.CVTSI2SD [ xmm 0; rax ];
            i Mnemonic.SQRTSD [ xmm 1; xmm 0 ];
            i Mnemonic.CVTSD2SI [ rax; xmm 1 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "sqrt(9)" 3L (State.get_gpr st Operand.RAX)

let test_x87_stack () =
  let st, _ =
    run_program
      [
        func "main"
          [
            i Mnemonic.MOV [ rbp; imm Layout.user_data_base ];
            i Mnemonic.MOV [ rax; imm 6 ];
            i Mnemonic.MOV [ mem Operand.RBP; rax ];
            i Mnemonic.FILD [ mem Operand.RBP ];
            i Mnemonic.FLD [ st 0 ];
            i Mnemonic.FMUL [ st 1 ];
            (* st0 = 36 *)
            i Mnemonic.FISTP [ mem Operand.RBP ~disp:8 ];
            i Mnemonic.FSTP [ mem Operand.RBP ~disp:16 ];
            i Mnemonic.MOV [ rax; mem Operand.RBP ~disp:8 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "6*6 via x87" 36L (State.get_gpr st Operand.RAX)

let test_vector_lanes () =
  let st, _ =
    run_program
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 3 ];
            i Mnemonic.CVTSI2SS [ xmm 1; rax ];
            i Mnemonic.VBROADCASTSS [ ymm 2; xmm 1 ];
            i Mnemonic.VADDPS [ ymm 3; ymm 2; ymm 2 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  Array.iter
    (fun lane -> Alcotest.(check (float 0.0)) "lane = 6" 6.0 lane)
    (Array.sub st.State.vregs.(3) 0 8)

let test_xor_zeroing () =
  let st, _ =
    run_program
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm 7 ];
            i Mnemonic.CVTSI2SS [ xmm 4; rax ];
            i Mnemonic.XORPS [ xmm 4; xmm 4 ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  Array.iteri
    (fun k lane ->
      if k < 4 then Alcotest.(check (float 0.0)) "zeroed" 0.0 lane)
    st.State.vregs.(4)

let test_run_stats () =
  let _, stats =
    run_program
      [
        func "main"
          [
            i Mnemonic.MOV [ rcx; imm 100 ];
            label "l";
            i Mnemonic.ADD [ rax; imm 1 ];
            i Mnemonic.DEC [ rcx ];
            i Mnemonic.JNZ [ L "l" ];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  (* mov + 100*(add,dec,jnz) + ret *)
  checki "retired" 302 stats.Machine.retired;
  checki "taken: 99 backedges + ret" 100 stats.Machine.taken_branches;
  checki "no kernel" 0 stats.Machine.kernel_retired

let test_runaway () =
  let funcs = [ func "main" [ label "l"; i Mnemonic.JMP [ L "l" ] ] ] in
  let img = assemble ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User funcs in
  let machine = Machine.create ~process:(Process.create [ img ]) () in
  let entry = (Option.get (Image.find_symbol img "main")).Symbol.addr in
  match Machine.run machine ~entry ~max_instructions:1000 () with
  | exception Machine.Runaway n -> checki "budget respected" 1000 n
  | _ -> Alcotest.fail "expected Runaway"

let test_syscall_roundtrip () =
  let kernel = Kernel.build () in
  let st, stats =
    run_program ~kernel:kernel.Kernel.live
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm Kernel_abi.sys_getpid ];
            i Mnemonic.SYSCALL [];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checki64 "getpid result" 4242L (State.get_gpr st Operand.RAX);
  checkb "kernel instructions retired" true (stats.Machine.kernel_retired > 0);
  checkb "back in user ring" true (Ring.equal st.State.ring Ring.User)

(* ------------------------------------------------------------------ *)
(* LBR                                                                 *)

let test_lbr_ring () =
  let l = Lbr.create ~depth:4 in
  checki "empty" 0 (Array.length (Lbr.snapshot l));
  for k = 1 to 6 do
    Lbr.push l ~src:k ~tgt:(k * 10)
  done;
  let snap = Lbr.snapshot l in
  checki "depth bounded" 4 (Array.length snap);
  checki "oldest is 3" 3 snap.(0).Lbr.src;
  checki "newest is 6" 6 snap.(3).Lbr.src;
  Lbr.overwrite_oldest l { Lbr.src = 99; tgt = 990 };
  let snap = Lbr.snapshot l in
  checki "oldest clobbered" 99 snap.(0).Lbr.src;
  checki "newest intact" 6 snap.(3).Lbr.src;
  Lbr.clear l;
  checki "cleared" 0 (Lbr.fill_level l)

(* ------------------------------------------------------------------ *)
(* PMU                                                                 *)

let counting_machine funcs events =
  let img = assemble ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User funcs in
  let machine = Machine.create ~process:(Process.create [ img ]) () in
  let pmu =
    Pmu.create Pmu_model.default
      (List.map (fun event -> { Pmu.event; mode = Pmu.Counting }) events)
  in
  Machine.add_observer machine (Pmu.observer pmu);
  let entry = (Option.get (Image.find_symbol img "main")).Symbol.addr in
  let stats = Machine.run machine ~entry () in
  (pmu, stats)

let simple_loop n body =
  [
    func "main"
      ((i Mnemonic.MOV [ rcx; imm n ] :: label "l" :: body)
      @ [ i Mnemonic.DEC [ rcx ]; i Mnemonic.JNZ [ L "l" ];
          i Mnemonic.RET_NEAR [] ]);
  ]

let test_pmu_counting_exact () =
  let pmu, stats =
    counting_machine
      (simple_loop 1000 [ i Mnemonic.ADD [ rax; imm 1 ] ])
      [ Pmu_event.Inst_retired_any; Pmu_event.Br_inst_retired_near_taken ]
  in
  let counts = Pmu.counts pmu in
  checki64 "instructions exact"
    (Int64.of_int stats.Machine.retired)
    (List.assoc Pmu_event.Inst_retired_any counts);
  checki64 "taken branches exact"
    (Int64.of_int stats.Machine.taken_branches)
    (List.assoc Pmu_event.Br_inst_retired_near_taken counts)

let test_pmu_specific_events () =
  let body =
    [
      i Mnemonic.ADDSD [ xmm 0; xmm 1 ];
      i Mnemonic.VADDPS [ ymm 0; ymm 1; ymm 2 ];
      i Mnemonic.FADD [ st 1 ];
      i Mnemonic.PADDD [ xmm 2; xmm 3 ];
    ]
  in
  let pmu, _ =
    counting_machine (simple_loop 100 body)
      [
        Pmu_event.Fp_comp_ops_sse; Pmu_event.Fp_comp_ops_avx;
        Pmu_event.Fp_comp_ops_x87; Pmu_event.Simd_int_128;
      ]
  in
  let counts = Pmu.counts pmu in
  checki64 "sse fp" 100L (List.assoc Pmu_event.Fp_comp_ops_sse counts);
  checki64 "avx fp" 100L (List.assoc Pmu_event.Fp_comp_ops_avx counts);
  checki64 "x87" 100L (List.assoc Pmu_event.Fp_comp_ops_x87 counts);
  checki64 "simd int" 100L (List.assoc Pmu_event.Simd_int_128 counts)

let test_pmu_sampling_rate () =
  let img =
    assemble ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User
      (simple_loop 50_000 [ i Mnemonic.ADD [ rax; imm 1 ] ])
  in
  let machine = Machine.create ~process:(Process.create [ img ]) () in
  let pmu =
    Pmu.create Pmu_model.default
      [
        {
          Pmu.event = Pmu_event.Inst_retired_prec_dist;
          mode = Pmu.Sampling { period = 997; lbr = false };
        };
      ]
  in
  Machine.add_observer machine (Pmu.observer pmu);
  let entry = (Option.get (Image.find_symbol img "main")).Symbol.addr in
  let stats = Machine.run machine ~entry () in
  let expected = stats.Machine.retired / 997 in
  let got = List.length (Pmu.samples pmu) in
  checkb "sample count ~ retired/period" true (abs (got - expected) <= 2)

let test_pmu_validation () =
  (match
     Pmu.create Pmu_model.default
       (List.init 5 (fun _ ->
            { Pmu.event = Pmu_event.Inst_retired_any; mode = Pmu.Counting }))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected counter limit");
  match
    Pmu.create Pmu_model.default
      [
        { Pmu.event = Pmu_event.Inst_retired_prec_dist;
          mode = Pmu.Sampling { period = 100; lbr = false } };
        { Pmu.event = Pmu_event.Inst_retired_prec_dist;
          mode = Pmu.Sampling { period = 200; lbr = false } };
      ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected precise-event restriction"

let test_pmu_reset () =
  let pmu, _ =
    counting_machine
      (simple_loop 10 [ i Mnemonic.ADD [ rax; imm 1 ] ])
      [ Pmu_event.Inst_retired_any ]
  in
  Pmu.reset pmu;
  checki64 "counts cleared" 0L
    (List.assoc Pmu_event.Inst_retired_any (Pmu.counts pmu));
  checki "samples cleared" 0 (List.length (Pmu.samples pmu))

let test_quirk_determinism () =
  let m = Pmu_model.default in
  List.iter
    (fun addr ->
      checkb "stable quirk decision" true
        (Pmu_model.is_quirk_branch m addr = Pmu_model.is_quirk_branch m addr))
    [ 0x400000; 0x400123; 0x812345 ]

let test_skid_draws_valid () =
  let prng = Prng.create ~seed:3L in
  let m = Pmu_model.default in
  for _ = 1 to 1000 do
    let d = Pmu_model.draw_skid prng m.Pmu_model.precise_skid in
    checkb "skid non-negative" true (d >= 0);
    checkb "skid bounded" true (d <= 8)
  done

(* ------------------------------------------------------------------ *)
(* Kernel image                                                        *)

let test_kernel_layouts_match () =
  let k = Kernel.build () in
  checki "same size" (Image.size k.Kernel.disk) (Image.size k.Kernel.live);
  checki "same base" k.Kernel.disk.Image.base k.Kernel.live.Image.base;
  checkb "text differs at tracepoints" false
    (Bytes.equal k.Kernel.disk.Image.code k.Kernel.live.Image.code)

let test_kernel_tracepoints_are_jumps_on_disk () =
  let k = Kernel.build () in
  let count_mnemonic img m =
    let decoded = Result.get_ok (Disasm.image img) in
    Array.fold_left
      (fun acc (d : Disasm.decoded) ->
        if Mnemonic.equal d.instr.Instruction.mnemonic m then acc + 1 else acc)
      0 decoded
  in
  (* 6 tracepoints: JMPs on disk become NOPs live; probe JMPs remain. *)
  checki "disk has 6 more JMPs"
    (count_mnemonic k.Kernel.disk Mnemonic.JMP)
    (count_mnemonic k.Kernel.live Mnemonic.JMP + 6);
  checki "live has 6 more NOPs"
    (count_mnemonic k.Kernel.live Mnemonic.NOP)
    (count_mnemonic k.Kernel.disk Mnemonic.NOP + 6)

let test_kernel_external_validation () =
  match
    Kernel.build
      ~external_services:[ { Kernel.number = 1; name = "x"; entry_addr = 0 } ]
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected reserved-number rejection"

(* ------------------------------------------------------------------ *)
(* Properties over random synthetic programs                           *)

let random_workload seed =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed:(Int64.of_int seed) in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:"p" ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 8;
        mean_len = 4;
        len_jitter = 2;
        iterations = 50;
        call_rate = 0.25;
        indirect_calls = false;
        profile =
          { Hbbp_workloads.Codegen.fp = Hbbp_workloads.Codegen.Mixed_fp;
            fp_rate = 0.25; mem_rate = 0.2; long_rate = 0.04;
            simd_int_rate = 0.05 };
      }
  in
  (* user_workload adds the _start wrapper that points RBP at the data
     region — the convention all filler memory operands rely on. *)
  Hbbp_workloads.Codegen.user_workload ~name:"p" funcs

let run_once (w : Hbbp_core.Workload.t) =
  let machine =
    Machine.create ~process:w.Hbbp_core.Workload.live_process ()
  in
  let pmu =
    Pmu.create Pmu_model.default
      [
        { Pmu.event = Pmu_event.Inst_retired_any; mode = Pmu.Counting };
        { Pmu.event = Pmu_event.Br_inst_retired_near_taken;
          mode = Pmu.Counting };
      ]
  in
  Machine.add_observer machine (Pmu.observer pmu);
  let stats =
    Machine.run machine ~entry:w.Hbbp_core.Workload.entry
      ~max_instructions:10_000_000 ()
  in
  (stats, Pmu.counts pmu)

let prop_machine_deterministic =
  QCheck2.Test.make ~name:"machine runs are deterministic" ~count:15
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let img = random_workload seed in
      let a, _ = run_once img and b, _ = run_once img in
      a = b)

let prop_pmu_counting_matches_machine =
  QCheck2.Test.make ~name:"PMU counting equals machine stats" ~count:15
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let img = random_workload seed in
      let stats, counts = run_once img in
      Int64.to_int (List.assoc Pmu_event.Inst_retired_any counts)
      = stats.Machine.retired
      && Int64.to_int (List.assoc Pmu_event.Br_inst_retired_near_taken counts)
        = stats.Machine.taken_branches)

let () =
  Alcotest.run "cpu"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "choose" `Quick test_prng_choose;
        ] );
      ( "memory",
        [
          Alcotest.test_case "rw" `Quick test_memory_rw;
          Alcotest.test_case "fault" `Quick test_memory_fault;
          Alcotest.test_case "overlap" `Quick test_memory_overlap_rejected;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "div" `Quick test_div;
          Alcotest.test_case "loop+flags" `Quick test_loop_and_flags;
          Alcotest.test_case "signed conditions" `Quick test_signed_conditions;
          Alcotest.test_case "stack+calls" `Quick test_stack_and_calls;
          Alcotest.test_case "indirect call" `Quick test_indirect_call;
          Alcotest.test_case "memory ops" `Quick test_memory_ops;
          Alcotest.test_case "fp scalar" `Quick test_fp_scalar;
          Alcotest.test_case "x87 stack" `Quick test_x87_stack;
          Alcotest.test_case "vector lanes" `Quick test_vector_lanes;
          Alcotest.test_case "xor zeroing" `Quick test_xor_zeroing;
        ] );
      ( "machine",
        [
          Alcotest.test_case "run stats" `Quick test_run_stats;
          Alcotest.test_case "runaway" `Quick test_runaway;
          Alcotest.test_case "syscall roundtrip" `Quick test_syscall_roundtrip;
        ] );
      ("lbr", [ Alcotest.test_case "ring buffer" `Quick test_lbr_ring ]);
      ( "pmu",
        [
          Alcotest.test_case "counting exact" `Quick test_pmu_counting_exact;
          Alcotest.test_case "specific events" `Quick test_pmu_specific_events;
          Alcotest.test_case "sampling rate" `Quick test_pmu_sampling_rate;
          Alcotest.test_case "validation" `Quick test_pmu_validation;
          Alcotest.test_case "reset" `Quick test_pmu_reset;
          Alcotest.test_case "quirk determinism" `Quick test_quirk_determinism;
          Alcotest.test_case "skid draws" `Quick test_skid_draws_valid;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_machine_deterministic;
          QCheck_alcotest.to_alcotest prop_pmu_counting_matches_machine;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "layouts match" `Quick test_kernel_layouts_match;
          Alcotest.test_case "tracepoints" `Quick
            test_kernel_tracepoints_are_jumps_on_disk;
          Alcotest.test_case "external validation" `Quick
            test_kernel_external_validation;
        ] );
    ]
