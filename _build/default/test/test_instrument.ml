(* Tests for the software-instrumentation (SDE/PIN-like) reference tool. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_instrument

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checki64 = Alcotest.(check int64)

let loop_program n =
  [
    func "main"
      [
        i Mnemonic.MOV [ rcx; imm n ];
        label "l";
        i Mnemonic.ADD [ rax; imm 1 ];
        i Mnemonic.IMUL [ rbx; rax ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "l" ];
        i Mnemonic.RET_NEAR [];
      ];
  ]

let instrumented ?config ?kernel funcs =
  let img =
    assemble ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User funcs
  in
  let images = match kernel with None -> [ img ] | Some k -> [ img; k ] in
  let process = Process.create images in
  let machine = Machine.create ~process () in
  let map = Bb_map.of_image_exn img in
  let sde =
    Sde.create (Option.value ~default:Sde.default_config config) [ map ]
  in
  Machine.add_observer machine (Sde.observer sde);
  let entry = (Option.get (Image.find_symbol img "main")).Symbol.addr in
  let stats = Machine.run machine ~entry () in
  (sde, map, stats)

let test_exact_block_counts () =
  let sde, map, _ = instrumented (loop_program 500) in
  let addrs =
    label_addresses ~name:"t" ~base:Layout.user_code_base ~ring:Ring.User
      (loop_program 500)
  in
  let loop_block =
    Option.get (Bb_map.block_starting_at map (List.assoc "l" addrs))
  in
  checki "loop block executed 500x" 500 (Sde.block_count sde map loop_block)

let test_exact_histogram () =
  let sde, _, stats = instrumented (loop_program 500) in
  let hist = Sde.histogram sde in
  checki64 "ADD count" 500L (List.assoc Mnemonic.ADD hist);
  checki64 "IMUL count" 500L (List.assoc Mnemonic.IMUL hist);
  checki64 "JNZ count" 500L (List.assoc Mnemonic.JNZ hist);
  checki64 "MOV once" 1L (List.assoc Mnemonic.MOV hist);
  checki64 "total matches machine"
    (Int64.of_int stats.Machine.retired)
    (Sde.total_instructions sde)

let test_kernel_invisible () =
  let kernel = Kernel.build () in
  let sde, _, stats =
    instrumented ~kernel:kernel.Kernel.live
      [
        func "main"
          [
            i Mnemonic.MOV [ rax; imm Kernel_abi.sys_bufclear ];
            i Mnemonic.SYSCALL [];
            i Mnemonic.RET_NEAR [];
          ];
      ]
  in
  checkb "kernel work happened" true (stats.Machine.kernel_retired > 100);
  checki "all kernel instructions lost" stats.Machine.kernel_retired
    (Sde.lost_kernel_instructions sde);
  checki64 "only user instructions counted"
    (Int64.of_int (stats.Machine.retired - stats.Machine.kernel_retired))
    (Sde.total_instructions sde)

let test_slowdown_model () =
  let sde, _, stats = instrumented (loop_program 1000) in
  let slowdown =
    float_of_int (Sde.instrumented_cycles sde) /. float_of_int stats.Machine.cycles
  in
  checkb "instrumentation is slower" true (slowdown > 2.0);
  checkb "but bounded" true (slowdown < 200.0)

let test_vector_code_slower_under_emulation () =
  let int_body = [ i Mnemonic.ADD [ rax; imm 1 ] ] in
  let avx_body = [ i Mnemonic.VFMADD213PS [ ymm 0; ymm 1; ymm 2 ] ] in
  let program body =
    [
      func "main"
        ([ i Mnemonic.MOV [ rcx; imm 1000 ]; label "l" ]
        @ body
        @ [ i Mnemonic.DEC [ rcx ]; i Mnemonic.JNZ [ L "l" ];
            i Mnemonic.RET_NEAR [] ]);
    ]
  in
  let factor body =
    let sde, _, stats = instrumented (program body) in
    float_of_int (Sde.instrumented_cycles sde) /. float_of_int stats.Machine.cycles
  in
  checkb "AVX emulates slower than integer code" true
    (factor avx_body > factor int_body)

let test_injected_bug () =
  let config = { Sde.default_config with bug_mnemonic = Some Mnemonic.ADD } in
  let sde, _, stats = instrumented ~config (loop_program 500) in
  let hist = Sde.histogram sde in
  checki64 "ADD undercounted by half" 250L (List.assoc Mnemonic.ADD hist);
  checkb "total fails PMU cross-check" true
    (Int64.to_int (Sde.total_instructions sde) < stats.Machine.retired)

let test_reset () =
  let sde, _, _ = instrumented (loop_program 10) in
  Sde.reset sde;
  checki64 "total cleared" 0L (Sde.total_instructions sde);
  checki "counts cleared" 0 (List.length (Sde.block_counts sde))

let () =
  Alcotest.run "instrument"
    [
      ( "sde",
        [
          Alcotest.test_case "exact block counts" `Quick test_exact_block_counts;
          Alcotest.test_case "exact histogram" `Quick test_exact_histogram;
          Alcotest.test_case "kernel invisible" `Quick test_kernel_invisible;
          Alcotest.test_case "slowdown model" `Quick test_slowdown_model;
          Alcotest.test_case "vector emulation cost" `Quick
            test_vector_code_slower_under_emulation;
          Alcotest.test_case "injected bug" `Quick test_injected_bug;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
    ]
