(* Tests for the HBBP core: criteria, fusion, error metrics, training
   and the end-to-end pipeline. *)

open Hbbp_isa
open Hbbp_core

let checkb = Alcotest.(check bool)
let checkf_eps eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Error metrics: the paper's worked example (section VI.B).           *)

let test_error_metric_paper_example () =
  (* "if we obtain a reference value of 500 executions of MOV, and
     measure 510 ... the error for that mnemonic is reported as
     10/500 = 2%". *)
  let report =
    Error.compare_mixes
      ~reference:[ (Mnemonic.MOV, 500.0) ]
      ~measured:[ (Mnemonic.MOV, 510.0) ]
  in
  checkf_eps 1e-9 "2% error" 0.02
    (Option.get (Error.error_for report Mnemonic.MOV));
  checkf_eps 1e-9 "weighted equals single error" 0.02
    report.Error.avg_weighted_error

let test_error_metric_weighting () =
  (* 90% of the stream exact, 10% off by 50% -> weighted error 5%. *)
  let report =
    Error.compare_mixes
      ~reference:[ (Mnemonic.MOV, 900.0); (Mnemonic.DIV, 100.0) ]
      ~measured:[ (Mnemonic.MOV, 900.0); (Mnemonic.DIV, 150.0) ]
  in
  checkf_eps 1e-9 "weighted" 0.05 report.Error.avg_weighted_error

let test_error_spurious () =
  let report =
    Error.compare_mixes
      ~reference:[ (Mnemonic.MOV, 10.0) ]
      ~measured:[ (Mnemonic.MOV, 10.0); (Mnemonic.FSIN, 3.0) ]
  in
  checkb "spurious mnemonic reported" true
    (List.exists
       (fun (m, _) -> Mnemonic.equal m Mnemonic.FSIN)
       report.Error.spurious)

let test_block_errors () =
  let errors =
    Error.block_errors ~reference:[| 100.0; 0.0; 50.0 |]
      ~measured:[| 110.0; 5.0; 25.0 |]
  in
  checkf_eps 1e-9 "10% over" 0.1 errors.(0);
  checkf_eps 1e-9 "zero reference skipped" 0.0 errors.(1);
  checkf_eps 1e-9 "50% under" 0.5 errors.(2)

let gen_mix =
  QCheck2.Gen.(
    list_size (int_range 1 20)
      (map2
         (fun code count ->
           ( Option.value ~default:Mnemonic.NOP
               (Mnemonic.of_code (code mod (Mnemonic.max_code + 1))),
             float_of_int (1 + (count mod 100000)) ))
         nat nat))

let dedup mix =
  (* Sum duplicates so the reference is a well-formed histogram. *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun (m, c) ->
      Hashtbl.replace table m
        (c +. Option.value ~default:0.0 (Hashtbl.find_opt table m)))
    mix;
  Hashtbl.fold (fun m c acc -> (m, c) :: acc) table []

let prop_error_zero_on_identity =
  QCheck2.Test.make ~name:"identical mixes have zero error" ~count:100 gen_mix
    (fun mix ->
      let mix = dedup mix in
      let r = Error.compare_mixes ~reference:mix ~measured:mix in
      Float.abs r.Error.avg_weighted_error < 1e-9
      && List.for_all (fun (e : Error.per_mnemonic) -> e.error < 1e-9)
           r.Error.per_mnemonic)

let prop_error_scaling =
  QCheck2.Test.make ~name:"uniform scaling k gives error |1-k|" ~count:100
    QCheck2.Gen.(pair gen_mix (float_range 0.1 3.0))
    (fun (mix, k) ->
      let mix = dedup mix in
      let measured = List.map (fun (m, c) -> (m, c *. k)) mix in
      let r = Error.compare_mixes ~reference:mix ~measured in
      Float.abs (r.Error.avg_weighted_error -. Float.abs (1.0 -. k)) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Criteria                                                            *)

let feature_vec ~len ~bias ~disparity =
  let v = Array.make (Array.length Feature.names) 0.0 in
  v.(Feature.index_block_length) <- len;
  v.(Feature.index_bias) <- (if bias then 1.0 else 0.0);
  v.(Feature.index_disparity) <- disparity;
  v

let test_length_rule () =
  let c = Criteria.default in
  checkb "short block -> LBR" true
    (Criteria.decide c (feature_vec ~len:5.0 ~bias:false ~disparity:0.0)
    = Criteria.Use_lbr);
  checkb "18 -> LBR (inclusive)" true
    (Criteria.decide c (feature_vec ~len:18.0 ~bias:false ~disparity:0.0)
    = Criteria.Use_lbr);
  checkb "19 -> EBS" true
    (Criteria.decide c (feature_vec ~len:19.0 ~bias:false ~disparity:0.0)
    = Criteria.Use_ebs);
  checkb "biased short disparate -> EBS" true
    (Criteria.decide c (feature_vec ~len:5.0 ~bias:true ~disparity:0.6)
    = Criteria.Use_ebs);
  checkb "biased tiny consistent -> LBR" true
    (Criteria.decide c (feature_vec ~len:3.0 ~bias:true ~disparity:0.05)
    = Criteria.Use_lbr);
  checkb "length_only ignores bias" true
    (Criteria.decide Criteria.length_only
       (feature_vec ~len:5.0 ~bias:true ~disparity:0.9)
    = Criteria.Use_lbr)

(* ------------------------------------------------------------------ *)
(* End-to-end pipeline on a small workload.                            *)

let small_workload () =
  let ctx = Hbbp_workloads.Codegen.create_ctx ~seed:0xBEEFL in
  let funcs =
    Hbbp_workloads.Codegen.synthetic_funcs ctx ~name:"small" ~helpers:2
      {
        Hbbp_workloads.Codegen.blocks = 15;
        mean_len = 5;
        len_jitter = 3;
        iterations = 8000;
        call_rate = 0.2;
        indirect_calls = false;
        profile = Hbbp_workloads.Codegen.int_only;
      }
  in
  Hbbp_workloads.Codegen.user_workload ~name:"small-test" funcs

let profile = lazy (Pipeline.run (small_workload ()))

let test_pipeline_reference_total () =
  let p = Lazy.force profile in
  (* The reference BBEC expands to exactly the executed user
     instructions. *)
  checkf_eps 1.0 "reference mass = retired"
    (float_of_int (p.Pipeline.stats.Hbbp_cpu.Machine.retired
                   - p.Pipeline.stats.Hbbp_cpu.Machine.kernel_retired))
    (Hbbp_analyzer.Bbec.total_instructions p.Pipeline.static
       p.Pipeline.reference)

let test_pipeline_estimates_sane () =
  let p = Lazy.force profile in
  let total = float_of_int p.Pipeline.stats.Hbbp_cpu.Machine.retired in
  List.iter
    (fun bbec ->
      let mass =
        Hbbp_analyzer.Bbec.total_instructions p.Pipeline.static bbec
      in
      checkb "estimate within 50% of truth" true
        (mass > 0.5 *. total && mass < 1.5 *. total))
    [
      p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec;
      p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec;
      p.Pipeline.hbbp;
    ]

let test_pipeline_errors_reasonable () =
  let p = Lazy.force profile in
  let err = (Pipeline.error_report p p.Pipeline.hbbp).Error.avg_weighted_error in
  checkb "HBBP error below 10%" true (err < 0.10)

let test_pipeline_cross_check_clean () =
  let p = Lazy.force profile in
  checkb "SDE matches PMU totals" true (Pipeline.sde_pmu_discrepancy p < 0.001)

let test_pipeline_overheads () =
  let p = Lazy.force profile in
  checkb "collection overhead < 5%" true (p.Pipeline.collection_overhead < 0.05);
  checkb "SDE slowdown > 2x" true (p.Pipeline.sde_slowdown > 2.0)

let test_pipeline_decisions_follow_criteria () =
  let p = Lazy.force profile in
  let decisions =
    Combine.decisions p.Pipeline.static ~criteria:Criteria.length_only
      ~bias:p.Pipeline.bias ~ebs:p.Pipeline.ebs ~lbr:p.Pipeline.lbr
  in
  Array.iteri
    (fun gid d ->
      let _, _, block = Hbbp_analyzer.Static.block p.Pipeline.static gid in
      let len = Hbbp_program.Basic_block.length block in
      checkb "length_only decision matches rule" true
        (if len <= 18 then d = Criteria.Use_lbr else d = Criteria.Use_ebs))
    decisions

let test_fuse_picks_sources () =
  let p = Lazy.force profile in
  let fused =
    Combine.fuse p.Pipeline.static ~criteria:Criteria.length_only
      ~bias:p.Pipeline.bias ~ebs:p.Pipeline.ebs ~lbr:p.Pipeline.lbr
  in
  Hbbp_analyzer.Static.iter
    (fun gid _ block ->
      let len = Hbbp_program.Basic_block.length block in
      let expected =
        if len <= 18 then
          Hbbp_analyzer.Bbec.count p.Pipeline.lbr.Hbbp_analyzer.Lbr_estimator.bbec gid
        else Hbbp_analyzer.Bbec.count p.Pipeline.ebs.Hbbp_analyzer.Ebs_estimator.bbec gid
      in
      checkf_eps 1e-9 "fused value comes from the chosen source" expected
        (Hbbp_analyzer.Bbec.count fused gid))
    p.Pipeline.static

(* ------------------------------------------------------------------ *)
(* Training                                                            *)

let test_training_examples () =
  let p = Lazy.force profile in
  let examples = Training.examples p in
  checkb "examples exist" true (List.length examples > 5);
  List.iter
    (fun (e : Training.example) ->
      checkb "weight positive" true (e.weight > 0.0);
      checkb "label valid" true
        (e.label = Criteria.class_ebs || e.label = Criteria.class_lbr);
      Alcotest.(check int)
        "feature arity"
        (Array.length Feature.names)
        (Array.length e.features))
    examples

let test_training_dataset_and_tree () =
  let p = Lazy.force profile in
  let tree, dataset = Training.train [ p ] in
  checkb "dataset matches examples" true (Hbbp_mltree.Dataset.length dataset > 5);
  (* Predictions are valid decisions for any block. *)
  Hbbp_analyzer.Static.iter
    (fun gid _ _ ->
      let d = Criteria.decide (Criteria.Tree tree) (Pipeline.features p gid) in
      checkb "decision valid" true (d = Criteria.Use_ebs || d = Criteria.Use_lbr))
    p.Pipeline.static

let test_workload_constructors () =
  let w = small_workload () in
  checkb "analysis = live for user-only" true
    (w.Workload.analysis_process == w.Workload.live_process);
  match
    Workload.of_user_image
      (List.hd (Hbbp_program.Process.images w.Workload.live_process))
      ~entry_symbol:"no_such_symbol"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected missing-symbol rejection"

let () =
  Alcotest.run "core"
    [
      ( "error",
        [
          Alcotest.test_case "paper example" `Quick
            test_error_metric_paper_example;
          Alcotest.test_case "weighting" `Quick test_error_metric_weighting;
          Alcotest.test_case "spurious" `Quick test_error_spurious;
          Alcotest.test_case "block errors" `Quick test_block_errors;
        ] );
      ( "error properties",
        [
          QCheck_alcotest.to_alcotest prop_error_zero_on_identity;
          QCheck_alcotest.to_alcotest prop_error_scaling;
        ] );
      ("criteria", [ Alcotest.test_case "length rule" `Quick test_length_rule ]);
      ( "pipeline",
        [
          Alcotest.test_case "reference total" `Quick
            test_pipeline_reference_total;
          Alcotest.test_case "estimates sane" `Quick
            test_pipeline_estimates_sane;
          Alcotest.test_case "errors reasonable" `Quick
            test_pipeline_errors_reasonable;
          Alcotest.test_case "cross-check clean" `Quick
            test_pipeline_cross_check_clean;
          Alcotest.test_case "overheads" `Quick test_pipeline_overheads;
          Alcotest.test_case "decisions follow criteria" `Quick
            test_pipeline_decisions_follow_criteria;
          Alcotest.test_case "fusion sources" `Quick test_fuse_picks_sources;
        ] );
      ( "training",
        [
          Alcotest.test_case "examples" `Quick test_training_examples;
          Alcotest.test_case "dataset+tree" `Quick test_training_dataset_and_tree;
        ] );
      ( "workload",
        [ Alcotest.test_case "constructors" `Quick test_workload_constructors ]
      );
    ]
