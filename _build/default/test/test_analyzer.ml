(* Tests for the analyzer: static views, stream walking, the EBS/LBR
   estimators, bias detection, mixes, pivots and the kernel patch. *)

open Hbbp_isa
open Hbbp_program
open Hbbp_program.Asm
open Hbbp_cpu
open Hbbp_analyzer

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf_eps eps = Alcotest.(check (float eps))

(* A two-image process: user loop + a second user image. *)
let user_funcs =
  [
    func "main"
      [
        i Mnemonic.MOV [ rcx; imm 100 ];
        label "l";
        i Mnemonic.ADD [ rax; imm 1 ];
        i Mnemonic.ADD [ rax; imm 2 ];
        i Mnemonic.DEC [ rcx ];
        i Mnemonic.JNZ [ L "l" ];
        i Mnemonic.RET_NEAR [];
      ];
  ]

let lib_funcs =
  [ func "helper" [ i Mnemonic.XOR [ rax; rax ]; i Mnemonic.RET_NEAR [] ] ]

let two_image_process () =
  let a =
    assemble ~name:"prog" ~base:Layout.user_code_base ~ring:Ring.User user_funcs
  in
  let b = assemble ~name:"lib" ~base:0x500000 ~ring:Ring.User lib_funcs in
  Process.create [ a; b ]

let test_static_global_ids () =
  let static = Static.create_exn (two_image_process ()) in
  checkb "has blocks from both images" true (Static.total_blocks static >= 4);
  (* Every block id roundtrips through its address. *)
  Static.iter
    (fun gid _ block ->
      Alcotest.(check (option int))
        "find_starting" (Some gid)
        (Static.find_starting static block.Basic_block.addr);
      Alcotest.(check (option int))
        "find by last addr" (Some gid)
        (Static.find static (Basic_block.last_addr block)))
    static;
  checkb "unmapped address" true (Option.is_none (Static.find static 0x999999));
  checkb "map lookup by name" true
    (Option.is_some (Static.map_of_image static "lib"))

let test_static_next_in_layout () =
  let static = Static.create_exn (two_image_process ()) in
  (* next_in_layout never crosses image boundaries. *)
  Static.iter
    (fun gid img block ->
      match Static.next_in_layout static gid with
      | Some next_gid ->
          let next_img, _, next_block = Static.block static next_gid in
          checkb "same image" true (String.equal img.Image.name next_img.Image.name);
          checki "contiguous" (Basic_block.end_addr block)
            next_block.Basic_block.addr
      | None -> ())
    static

(* ------------------------------------------------------------------ *)
(* Stream walking                                                      *)

let walk_fixture () =
  (* main: [mov] [add,add,dec,jnz] [ret] — stream over the loop body. *)
  let static = Static.create_exn (two_image_process ()) in
  let addrs =
    label_addresses ~name:"prog" ~base:Layout.user_code_base ~ring:Ring.User
      user_funcs
  in
  (static, List.assoc "l" addrs)

let test_walk_single_block () =
  let static, loop_addr = walk_fixture () in
  let _, _, block = Static.block static (Option.get (Static.find_starting static loop_addr)) in
  let src = Basic_block.last_addr block in
  match Stream_walk.walk static ~target:loop_addr ~src with
  | Stream_walk.Blocks [ gid ] ->
      checki "walk covers the loop block"
        (Option.get (Static.find_starting static loop_addr))
        gid
  | _ -> Alcotest.fail "expected a single-block walk"

let test_walk_backwards_is_bad () =
  let static, loop_addr = walk_fixture () in
  match Stream_walk.walk static ~target:loop_addr ~src:(loop_addr - 8) with
  | Stream_walk.Bad -> ()
  | _ -> Alcotest.fail "expected Bad"

let test_walk_through_jump_is_inconsistent () =
  (* Build code where a straight-line claim crosses an unconditional
     jump. *)
  let funcs =
    [
      func "main"
        [
          i Mnemonic.ADD [ rax; imm 1 ];
          i Mnemonic.JMP [ L "after" ];
          label "mid";
          i Mnemonic.ADD [ rax; imm 2 ];
          label "after";
          i Mnemonic.ADD [ rax; imm 3 ];
          i Mnemonic.RET_NEAR [];
        ];
    ]
  in
  let img = assemble ~name:"j" ~base:0x400000 ~ring:Ring.User funcs in
  let static = Static.create_exn (Process.create [ img ]) in
  let addrs = label_addresses ~name:"j" ~base:0x400000 ~ring:Ring.User funcs in
  (* Claim straight-line flow from main entry to inside "after": crosses
     the JMP. *)
  match
    Stream_walk.walk static ~target:0x400000 ~src:(List.assoc "after" addrs)
  with
  | Stream_walk.Inconsistent -> ()
  | _ -> Alcotest.fail "expected Inconsistent"

(* ------------------------------------------------------------------ *)
(* Estimators on synthetic samples                                     *)

let test_ebs_estimator_math () =
  let static, loop_addr = walk_fixture () in
  let gid = Option.get (Static.find_starting static loop_addr) in
  let _, _, block = Static.block static gid in
  let len = Basic_block.length block in
  (* 40 samples on the block at period 50 -> bbec = 40*50/len. *)
  let samples =
    Array.init 40 (fun k ->
        {
          Sample_db.ip = block.Basic_block.addrs.(k mod len);
          ring = Ring.User;
        })
  in
  let est = Ebs_estimator.estimate static ~period:50 samples in
  checkf_eps 1e-6 "bbec math"
    (40.0 *. 50.0 /. float_of_int len)
    (Bbec.count est.Ebs_estimator.bbec gid);
  checki "no unattributed" 0 est.Ebs_estimator.unattributed;
  (* An IP outside any image is counted as unattributed. *)
  let est =
    Ebs_estimator.estimate static ~period:50
      [| { Sample_db.ip = 0x1; ring = Ring.User } |]
  in
  checki "unattributed counted" 1 est.Ebs_estimator.unattributed

let test_lbr_estimator_weights () =
  let static, loop_addr = walk_fixture () in
  let gid = Option.get (Static.find_starting static loop_addr) in
  let _, _, block = Static.block static gid in
  let src = Basic_block.last_addr block in
  (* One snapshot with 3 entries, all loop backedges: 2 usable streams,
     each covering the loop block with weight 1/2 -> bbec = 1 * period. *)
  let entry = { Lbr.src; tgt = loop_addr } in
  let samples =
    [| { Sample_db.entries = [| entry; entry; entry |]; ring = Ring.User } |]
  in
  let est = Lbr_estimator.estimate static ~period:211 samples in
  checki "2 usable streams" 2 est.Lbr_estimator.usable_streams;
  checkf_eps 1e-6 "snapshot counts as one sample" 211.0
    (Bbec.count est.Lbr_estimator.bbec gid)

let test_lbr_estimator_inconsistent_counted () =
  let funcs =
    [
      func "main"
        [
          i Mnemonic.ADD [ rax; imm 1 ];
          i Mnemonic.JMP [ L "after" ];
          label "after";
          i Mnemonic.ADD [ rax; imm 3 ];
          i Mnemonic.RET_NEAR [];
        ];
    ]
  in
  let img = assemble ~name:"j" ~base:0x400000 ~ring:Ring.User funcs in
  let static = Static.create_exn (Process.create [ img ]) in
  let addrs = label_addresses ~name:"j" ~base:0x400000 ~ring:Ring.User funcs in
  let after = List.assoc "after" addrs in
  (* Stream claiming flow from image base across the JMP. *)
  let samples =
    [|
      {
        Sample_db.entries =
          [|
            { Lbr.src = after + 100; tgt = 0x400000 };
            { Lbr.src = after + 3; tgt = 0 };
          |];
        ring = Ring.User;
      };
    |]
  in
  let est = Lbr_estimator.estimate static ~period:211 samples in
  checkb "inconsistent or discarded" true
    (est.Lbr_estimator.inconsistent_streams
     + est.Lbr_estimator.discarded_streams
    > 0)

(* ------------------------------------------------------------------ *)
(* Bias detection                                                      *)

let test_bias_detection () =
  let static, loop_addr = walk_fixture () in
  let gid = Option.get (Static.find_starting static loop_addr) in
  let _, _, block = Static.block static gid in
  let src = Basic_block.last_addr block in
  let hot = { Lbr.src; tgt = loop_addr } in
  let ret_block_gid = Option.get (Static.find static (Basic_block.end_addr block)) in
  ignore ret_block_gid;
  (* 100 snapshots where [hot] is stuck at entry[0] but appears at no
     deep slot: textbook entry[0] anomaly.  Fill deep slots with another
     branch. *)
  let other = { Lbr.src = src - 100; tgt = loop_addr } in
  let samples =
    Array.init 100 (fun _ ->
        {
          Sample_db.entries = [| hot; other; other; other |];
          ring = Ring.User;
        })
  in
  let bias = Bias.detect static samples in
  checkb "hot branch flagged" true bias.Bias.flags.(gid);
  let stat =
    List.find (fun (s : Bias.branch_stat) -> s.src = src) bias.Bias.stats
  in
  checkf_eps 1e-6 "entry0 share" 1.0 stat.Bias.entry0_share

let test_bias_quiet_on_uniform () =
  let static, loop_addr = walk_fixture () in
  let gid = Option.get (Static.find_starting static loop_addr) in
  let _, _, block = Static.block static gid in
  let src = Basic_block.last_addr block in
  let e = { Lbr.src; tgt = loop_addr } in
  (* The same branch everywhere: entry0 share = 1 but so is deep share:
     no anomaly. *)
  let samples =
    Array.init 100 (fun _ ->
        { Sample_db.entries = [| e; e; e; e |]; ring = Ring.User })
  in
  let bias = Bias.detect static samples in
  checkb "uniform presence not flagged" false bias.Bias.flags.(gid)

(* ------------------------------------------------------------------ *)
(* Mixes, pivots, views                                                *)

let mix_fixture () =
  let static = Static.create_exn (two_image_process ()) in
  let bbec = Bbec.create Bbec.Reference (Static.total_blocks static) in
  Static.iter
    (fun gid _ _ -> bbec.Bbec.counts.(gid) <- 10.0)
    static;
  (static, bbec)

let test_mix_expansion () =
  let static, bbec = mix_fixture () in
  let mix = Mix.of_bbec static bbec in
  (* Every instruction of every block contributes count 10. *)
  checkf_eps 1e-6 "total = 10 * instructions"
    (10.0 *. float_of_int
       (Static.total_blocks static |> fun _ ->
        let n = ref 0 in
        Static.iter (fun _ _ b -> n := !n + Basic_block.length b) static;
        !n))
    (Mix.total mix);
  let totals = Mix.mnemonic_totals mix in
  checkb "ADD counted" true
    (List.exists (fun (m, _) -> Mnemonic.equal m Mnemonic.ADD) totals)

let test_mix_filters () =
  let static, bbec = mix_fixture () in
  let mix = Mix.of_bbec static bbec in
  checkf_eps 1e-6 "user_only keeps everything (no kernel here)"
    (Mix.total mix)
    (Mix.total (Mix.user_only mix));
  checkf_eps 1e-6 "kernel_only empty" 0.0 (Mix.total (Mix.kernel_only mix))

let test_pivot () =
  let static, bbec = mix_fixture () in
  let mix = Mix.of_bbec static bbec in
  let table = Pivot.pivot ~dims:[ Pivot.Image; Pivot.Mnem ] mix in
  checkb "rows exist" true (List.length table.Pivot.rows > 0);
  (* Rows sorted descending. *)
  let counts = List.map snd table.Pivot.rows in
  checkb "sorted" true
    (List.for_all2 (fun a b -> a >= b) counts
       (List.tl counts @ [ Float.neg_infinity ]));
  let top = Pivot.top 2 table in
  checki "top limits rows" 2 (List.length top.Pivot.rows);
  (* Renders without raising. *)
  let _ = Format.asprintf "%a" Pivot.render top in
  ()

let test_pivot_csv () =
  let static, bbec = mix_fixture () in
  let mix = Mix.of_bbec static bbec in
  let csv = Pivot.to_csv (Pivot.pivot ~dims:[ Pivot.Mnem ] mix) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
  | header :: rows ->
      Alcotest.(check string) "header" "mnemonic,count" header;
      checkb "one row per mnemonic" true (List.length rows > 0);
      List.iter
        (fun row ->
          checki "two fields" 2 (List.length (String.split_on_char ',' row)))
        rows
  | [] -> Alcotest.fail "empty csv");
  (* Quoting: a field containing a comma gets wrapped. *)
  let quoted =
    Pivot.to_csv
      { Pivot.headers = [ "a" ]; rows = [ ([ "x,y" ], 1.0) ] }
  in
  checkb "comma field quoted" true
    (String.length quoted > 0
    && String.split_on_char '\n' quoted |> fun l ->
       List.nth l 1 = "\"x,y\",1.00")

let test_views () =
  let static, bbec = mix_fixture () in
  let mix = Mix.of_bbec static bbec in
  let t = Views.top_functions 5 mix in
  checkb "top functions non-empty" true (List.length t.Pivot.rows > 0);
  let packing = Views.packing_breakdown mix in
  checkb "packing view non-empty" true (List.length packing.Pivot.rows > 0);
  ignore mix;
  let total = Views.group_total Taxonomy.control_flow static bbec in
  checkb "control flow counted" true (total > 0.0)

(* ------------------------------------------------------------------ *)
(* Kernel patch                                                        *)

let test_kernel_patch () =
  let k = Kernel.build () in
  let user =
    assemble ~name:"u" ~base:Layout.user_code_base ~ring:Ring.User user_funcs
  in
  let analyzed = Process.create [ user; k.Kernel.disk ] in
  let live = Process.create [ user; k.Kernel.live ] in
  let patched = Kernel_patch.patch_process ~analyzed ~live in
  let patched_kernel = Option.get (Process.find_image patched "vmlinux") in
  checkb "patched text equals live text" true
    (Bytes.equal patched_kernel.Image.code k.Kernel.live.Image.code);
  (* User image untouched. *)
  let patched_user = Option.get (Process.find_image patched "u") in
  checkb "user text untouched" true
    (Bytes.equal patched_user.Image.code user.Image.code)

let test_loop_view () =
  (* Uniform BBEC of 10 over the loop fixture: trips = header/preheader
     = 1 when all counts equal; with a hotter header the ratio shows. *)
  let static, bbec = mix_fixture () in
  let addrs =
    label_addresses ~name:"prog" ~base:Layout.user_code_base ~ring:Ring.User
      user_funcs
  in
  let loop_gid =
    Option.get (Static.find_starting static (List.assoc "l" addrs))
  in
  bbec.Bbec.counts.(loop_gid) <- 100.0;
  let stats = Loop_view.report static bbec in
  checkb "at least one loop" true (List.length stats >= 1);
  let top = List.hd stats in
  Alcotest.(check string) "loop lives in main" "main" top.Loop_view.symbol;
  Alcotest.(check (float 1e-6)) "trip estimate = header/preheader" 10.0
    top.Loop_view.trips_per_entry;
  Alcotest.(check (float 1e-6))
    "dynamic instructions = count x len"
    (100.0 *. 4.0) top.Loop_view.dynamic_instructions;
  (* Renders. *)
  let _ = Format.asprintf "%a" (fun ppf -> Loop_view.render ppf ~top:5) stats in
  ()

let test_sample_db_split () =
  let mk event =
    Hbbp_collector.Record.Sample
      {
        Hbbp_collector.Record.event;
        ip = 0x400000;
        lbr = [| { Lbr.src = 1; tgt = 2 } |];
        ring = Ring.User;
        time = 0;
      }
  in
  let records =
    [
      Hbbp_collector.Record.Comm { pid = 1; name = "x" };
      mk Pmu_event.Inst_retired_prec_dist;
      mk Pmu_event.Br_inst_retired_near_taken;
      mk Pmu_event.Cpu_clk_unhalted;
      Hbbp_collector.Record.Lost 3;
    ]
  in
  let db = Sample_db.of_records records in
  checki "one ebs" 1 (Array.length db.Sample_db.ebs);
  checki "one lbr" 1 (Array.length db.Sample_db.lbr);
  checki "other events" 1 db.Sample_db.other;
  checki "lost" 3 db.Sample_db.lost

let () =
  Alcotest.run "analyzer"
    [
      ( "static",
        [
          Alcotest.test_case "global ids" `Quick test_static_global_ids;
          Alcotest.test_case "layout chain" `Quick test_static_next_in_layout;
        ] );
      ( "stream_walk",
        [
          Alcotest.test_case "single block" `Quick test_walk_single_block;
          Alcotest.test_case "backwards" `Quick test_walk_backwards_is_bad;
          Alcotest.test_case "through jump" `Quick
            test_walk_through_jump_is_inconsistent;
        ] );
      ( "estimators",
        [
          Alcotest.test_case "ebs math" `Quick test_ebs_estimator_math;
          Alcotest.test_case "lbr weights" `Quick test_lbr_estimator_weights;
          Alcotest.test_case "lbr inconsistent" `Quick
            test_lbr_estimator_inconsistent_counted;
        ] );
      ( "bias",
        [
          Alcotest.test_case "detection" `Quick test_bias_detection;
          Alcotest.test_case "quiet on uniform" `Quick
            test_bias_quiet_on_uniform;
        ] );
      ( "mix",
        [
          Alcotest.test_case "expansion" `Quick test_mix_expansion;
          Alcotest.test_case "filters" `Quick test_mix_filters;
          Alcotest.test_case "pivot" `Quick test_pivot;
          Alcotest.test_case "pivot csv" `Quick test_pivot_csv;
          Alcotest.test_case "views" `Quick test_views;
        ] );
      ( "misc",
        [
          Alcotest.test_case "kernel patch" `Quick test_kernel_patch;
          Alcotest.test_case "loop view" `Quick test_loop_view;
          Alcotest.test_case "sample db split" `Quick test_sample_db_split;
        ] );
    ]
