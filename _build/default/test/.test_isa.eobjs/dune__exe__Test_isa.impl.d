test/test_isa.ml: Alcotest Bytes Encoding Hbbp_isa Instruction Int64 Latency List Mnemonic Operand Option QCheck2 QCheck_alcotest Taxonomy
