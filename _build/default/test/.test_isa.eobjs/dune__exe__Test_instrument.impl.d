test/test_instrument.ml: Alcotest Bb_map Hbbp_cpu Hbbp_instrument Hbbp_isa Hbbp_program Image Int64 Kernel Kernel_abi Layout List Machine Mnemonic Option Process Ring Sde Symbol
