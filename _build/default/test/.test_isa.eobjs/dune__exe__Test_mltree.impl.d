test/test_mltree.ml: Alcotest Array Cart Dataset Hbbp_mltree QCheck2 QCheck_alcotest Render String
