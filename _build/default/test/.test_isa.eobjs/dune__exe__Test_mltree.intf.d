test/test_mltree.mli:
