test/test_shape.ml: Alcotest Error Float Hbbp_analyzer Hbbp_collector Hbbp_core Hbbp_cpu Hbbp_instrument Hbbp_workloads List Pipeline String Training
